package datasets

import (
	"fmt"
	"math/rand"
	"strings"

	"multirag/internal/textutil"
)

// Word pools for deterministic synthetic naming. They are large enough that
// the default dataset sizes produce essentially collision-free names; the
// generator additionally suffixes an index on collision.
var (
	firstNames = []string{
		"Ada", "Blake", "Carmen", "Dmitri", "Elena", "Farid", "Greta", "Hiro",
		"Imani", "Jonas", "Keiko", "Luca", "Mei", "Nadia", "Omar", "Priya",
		"Quentin", "Rosa", "Sven", "Tara", "Umar", "Vera", "Wen", "Xenia",
		"Yusuf", "Zola",
	}
	lastNames = []string{
		"Abara", "Bennett", "Castillo", "Dubois", "Eriksen", "Fontaine",
		"Garcia", "Haddad", "Ivanov", "Jansen", "Kowalski", "Lindgren",
		"Moreau", "Nakamura", "Okafor", "Petrov", "Quispe", "Rossi",
		"Schmidt", "Tanaka", "Ueda", "Vasquez", "Weber", "Xu", "Yamada",
		"Zhang",
	}
	adjectives = []string{
		"Silent", "Crimson", "Hidden", "Golden", "Broken", "Electric",
		"Distant", "Frozen", "Burning", "Lost", "Final", "Endless",
		"Savage", "Gentle", "Hollow", "Radiant", "Shattered", "Velvet",
		"Wandering", "Midnight",
	}
	nouns = []string{
		"Horizon", "Empire", "Garden", "Mirror", "Station", "Harbor",
		"Forest", "Machine", "Signal", "Archive", "Voyage", "Covenant",
		"Labyrinth", "Paradox", "Monument", "Frontier", "Cipher", "Orchard",
		"Citadel", "Meridian",
	}
	cities = []string{
		"Beijing", "New York", "London", "Tokyo", "Paris", "Singapore",
		"Dubai", "Frankfurt", "Sydney", "Toronto", "Seoul", "Chicago",
		"Amsterdam", "Madrid", "Istanbul", "Bangkok",
	}
	genres = []string{
		"drama", "thriller", "comedy", "noir", "science fiction", "romance",
		"documentary", "western", "horror", "mystery",
	}
	publishers = []string{
		"Northwind Press", "Atlas House", "Meridian Books", "Quill & Crane",
		"Lanternlight", "Harborview", "Foxglove Editions", "Summit Folio",
	}
	sectors = []string{
		"energy", "technology", "healthcare", "finance", "materials",
		"utilities", "consumer", "industrials",
	}
	exchanges = []string{"NYSE", "NASDAQ", "LSE", "HKEX", "TSE", "FWB"}
	statuses  = []string{"On time", "Delayed", "Boarding", "Cancelled", "Departed", "Diverted"}
	airlines  = []string{"CA", "MU", "CZ", "UA", "DL", "AF", "LH", "BA", "NH", "SQ"}
)

func pick(rng *rand.Rand, pool []string) string {
	return pool[rng.Intn(len(pool))]
}

func personName(rng *rand.Rand) string {
	return pick(rng, firstNames) + " " + pick(rng, lastNames)
}

func titleName(rng *rand.Rand) string {
	return "The " + pick(rng, adjectives) + " " + pick(rng, nouns)
}

func flightName(rng *rand.Rand) string {
	return fmt.Sprintf("%s%d", pick(rng, airlines), 100+rng.Intn(900))
}

func tickerName(rng *rand.Rand) string {
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	n := 3 + rng.Intn(2)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(letters[rng.Intn(len(letters))])
	}
	return sb.String()
}

// genValue produces a fresh value of the given kind.
func genValue(rng *rand.Rand, kind string) string {
	switch kind {
	case "person":
		return personName(rng)
	case "year":
		return fmt.Sprintf("%d", 1960+rng.Intn(65))
	case "word":
		return pick(rng, genres)
	case "publisher":
		return pick(rng, publishers)
	case "city":
		return pick(rng, cities)
	case "time":
		return fmt.Sprintf("%02d:%02d", rng.Intn(24), rng.Intn(12)*5)
	case "number":
		return fmt.Sprintf("%d.%02d", 5+rng.Intn(500), rng.Intn(100))
	case "bignumber":
		return fmt.Sprintf("%d", (1+rng.Intn(9000))*1000)
	case "status":
		return pick(rng, statuses)
	case "sector":
		return pick(rng, sectors)
	case "exchange":
		return pick(rng, exchanges)
	case "gate":
		return fmt.Sprintf("%c%d", 'A'+rune(rng.Intn(6)), 1+rng.Intn(40))
	case "pages":
		return fmt.Sprintf("%d", 120+rng.Intn(900))
	default:
		return fmt.Sprintf("value-%d", rng.Intn(1_000_000))
	}
}

// normName canonicalises an entity surface form with the same
// standardisation the knowledge-construction module applies, so gold keys
// unify cross-source surface variants.
func normName(s string) string {
	return textutil.StandardizeName(s)
}

// variantSurface renders a source-specific surface form of an entity name —
// the deep-web reality that different sources format the same entity
// differently ("The Silent Horizon" / "Silent Horizon, The" / "Flight CA981").
func variantSurface(rng *rand.Rand, name, domain string) string {
	switch domain {
	case "flights":
		return "Flight " + name
	case "stocks":
		if rng.Intn(2) == 0 {
			return name + " Inc"
		}
		return "Stock " + name
	default:
		if strings.HasPrefix(name, "The ") {
			if rng.Intn(2) == 0 {
				return strings.TrimPrefix(name, "The ") + ", The"
			}
			return strings.TrimPrefix(name, "The ")
		}
		return "The " + name
	}
}
