package datasets

import (
	"fmt"
	"math/rand"
	"sort"

	"multirag/internal/kg"
)

// MaskRelations implements the Q2 sparsity perturbation: it removes frac of
// the graph's triples at random, stratified so the corpus's correct/incorrect
// claim ratio is preserved (uniform masking would otherwise launder conflict
// out of the corpus), and never removing the last correct claim of a gold
// fact — the paper's constraint that "query answers are still retrievable".
// gold maps GoldKey → true values; pass nil to mask without stratification or
// the answerability guard. It returns the number of triples removed.
func MaskRelations(g *kg.Graph, frac float64, seed uint64, gold map[string][]string) int {
	if frac <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	ids := g.TripleIDs()
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })

	isCorrect := func(t *kg.Triple) (string, bool) {
		if gold == nil {
			return "", false
		}
		key := t.Subject + "\x00" + t.Predicate
		vals, ok := gold[key]
		if !ok {
			return key, false
		}
		for _, v := range vals {
			if kg.CanonicalID(v) == kg.CanonicalID(t.Object) {
				return key, true
			}
		}
		return key, false
	}
	if gold == nil {
		target := int(float64(len(ids)) * frac)
		removed := 0
		for _, id := range ids {
			if removed >= target {
				break
			}
			if g.RemoveTriple(id) {
				removed++
			}
		}
		return removed
	}
	// Stratify: partition into correct and incorrect claims, mask frac of
	// each stratum independently.
	var correct, wrong []string
	correctLeft := map[string]int{}
	for _, id := range ids {
		t, _ := g.Triple(id)
		if key, ok := isCorrect(t); ok {
			correct = append(correct, id)
			correctLeft[key]++
		} else {
			wrong = append(wrong, id)
		}
	}
	// Remove from the correct stratum first (the guard may stall below the
	// target); then remove the same *achieved* fraction from the wrong
	// stratum so the corpus conflict ratio is preserved at every level.
	removed := 0
	targetCorrect := int(float64(len(correct)) * frac)
	removedCorrect := 0
	for _, id := range correct {
		if removedCorrect >= targetCorrect {
			break
		}
		t, _ := g.Triple(id)
		key, _ := isCorrect(t)
		if correctLeft[key] <= 1 {
			continue // keep the query answerable
		}
		if g.RemoveTriple(id) {
			correctLeft[key]--
			removedCorrect++
			removed++
		}
	}
	achieved := frac
	if len(correct) > 0 {
		achieved = float64(removedCorrect) / float64(len(correct))
	}
	targetWrong := int(float64(len(wrong)) * achieved)
	if targetWrong > len(wrong) {
		targetWrong = len(wrong)
	}
	for _, id := range wrong[:targetWrong] {
		if g.RemoveTriple(id) {
			removed++
		}
	}
	return removed
}

// AddShuffledTriples implements the Q2 inconsistency perturbation: it adds
// frac·|T| copies of existing triples whose objects are shuffled amongst the
// copies, destroying multi-source consistency exactly as §IV-B describes
// ("the new triples are copies of the original triples ... completely
// shuffled the relationship edges"). The added triples are attributed to a
// synthetic "perturb" source. It returns the number of triples added.
func AddShuffledTriples(g *kg.Graph, frac float64, seed uint64) int {
	if frac <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	ids := g.TripleIDs()
	n := int(float64(len(ids)) * frac)
	if n == 0 {
		return 0
	}
	// Sample n template triples and shuffle their objects within each
	// predicate family, so the injected claims stay type-plausible (a status
	// swaps with another flight's status) and genuinely conflict instead of
	// being trivially filterable nonsense.
	picks := make([]*kg.Triple, 0, n)
	for i := 0; i < n; i++ {
		t, _ := g.Triple(ids[rng.Intn(len(ids))])
		picks = append(picks, t)
	}
	byPred := map[string][]int{}
	for i, t := range picks {
		byPred[t.Predicate] = append(byPred[t.Predicate], i)
	}
	objects := make([]string, len(picks))
	preds := make([]string, 0, len(byPred))
	for p := range byPred {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	for _, p := range preds {
		group := byPred[p]
		vals := make([]string, len(group))
		for j, i := range group {
			vals[j] = picks[i].Object
		}
		// Rotate by a random offset: every copy lands on a different
		// record's value for the same attribute.
		if len(vals) > 1 {
			off := 1 + rng.Intn(len(vals)-1)
			rotated := append(vals[off:], vals[:off]...)
			vals = rotated
		}
		for j, i := range group {
			objects[i] = vals[j]
		}
	}
	added := 0
	for i, t := range picks {
		_, err := g.AddTriple(kg.Triple{
			Subject:   t.Subject,
			Predicate: t.Predicate,
			Object:    objects[i],
			Source:    "perturb-" + t.Source,
			Domain:    t.Domain,
			Format:    t.Format,
			Weight:    t.Weight,
		})
		if err == nil {
			added++
		}
	}
	return added
}

// CorruptSources implements the Fig. 6 corruption sweep at the claim level:
// it rewrites frac of each source's claims to a wrong value from the
// dataset's conflict pool, returning a new claim slice. The dataset files are
// regenerated from the corrupted claims so the whole ingestion path sees the
// corruption.
func (d *Dataset) CorruptSources(frac float64, seed uint64) (*Dataset, error) {
	if frac <= 0 {
		return d, nil
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	out := &Dataset{Spec: d.Spec, Gold: d.Gold, Queries: d.Queries}
	bySource := map[string][]Claim{}
	var srcOrder []string
	for _, c := range d.Claims {
		if _, ok := bySource[c.Source]; !ok {
			srcOrder = append(srcOrder, c.Source)
		}
		bySource[c.Source] = append(bySource[c.Source], c)
	}
	sort.Strings(srcOrder)
	corrupted := map[string][]Claim{}
	for _, src := range srcOrder {
		claims := bySource[src]
		cp := make([]Claim, len(claims))
		copy(cp, claims)
		for i := range cp {
			if rng.Float64() < frac {
				cp[i].Value = corruptClaimValue(rng, cp[i].Value)
				cp[i].Correct = false
			}
		}
		corrupted[src] = cp
	}
	for _, src := range d.Spec.Sources {
		out.Claims = append(out.Claims, corrupted[src.Name]...)
		f, err := materialise(d.Spec, src, corrupted[src.Name])
		if err != nil {
			return nil, fmt.Errorf("datasets: corrupt %s: %w", d.Spec.Name, err)
		}
		out.Files = append(out.Files, f)
	}
	return out, nil
}

func corruptClaimValue(rng *rand.Rand, v string) string {
	// Flip to a structurally similar but wrong value.
	kinds := []string{"person", "year", "word", "number", "status", "city"}
	return genValue(rng, kinds[rng.Intn(len(kinds))])
}
