package datasets

import (
	"fmt"
	"math/rand"
	"strings"
)

// The multi-hop generators stand in for HotpotQA and 2WikiMultiHopQA: both
// benchmarks reduce to questions whose answer requires composing facts from
// at least two documents drawn from a distractor-laden corpus. The generator
// emits wiki-style entity documents, bridge questions ("What is the
// birthplace of the director of X?") and — in the 2Wiki style — comparison
// questions ("Do X and Y have the same genre?"), with gold answers and gold
// supporting documents so Precision and Recall@5 are computable.

// Doc is one corpus document.
type Doc struct {
	ID     string
	Title  string
	Text   string
	Source string
}

// QAQuestion is one multi-hop question.
type QAQuestion struct {
	ID       string
	Text     string
	Type     string // "bridge" or "comparison"
	Answer   []string
	Support  []string // gold supporting document IDs
	HopChain []string // entity chain, for diagnostics
}

// QADataset is a generated multi-hop benchmark.
type QADataset struct {
	Name      string
	Docs      []Doc
	Questions []QAQuestion
}

// QASpec parameterises a multi-hop dataset.
type QASpec struct {
	Name string
	// Questions is the number of questions (the paper subsamples 300).
	Questions int
	// Comparison is the fraction of comparison-type questions (0 for the
	// HotpotQA style, ~0.4 for the 2Wiki style).
	Comparison float64
	// ConflictRate is the probability a distractor document contradicts a
	// supporting fact — the hallucination trap the confidence machinery is
	// meant to disarm.
	ConflictRate float64
	// DistractorsPerQ controls corpus noise.
	DistractorsPerQ int
	Seed            uint64
}

// Hotpot returns the HotpotQA-style preset.
func Hotpot(seed uint64) QASpec {
	return QASpec{Name: "hotpotqa", Questions: 300, Comparison: 0, ConflictRate: 0.35, DistractorsPerQ: 4, Seed: seed}
}

// TwoWiki returns the 2WikiMultiHopQA-style preset.
func TwoWiki(seed uint64) QASpec {
	return QASpec{Name: "2wikimultihopqa", Questions: 300, Comparison: 0.4, ConflictRate: 0.4, DistractorsPerQ: 4, Seed: seed}
}

// relation/attribute pools for the wiki-style universe.
var (
	qaRelations  = []string{"director", "author", "founder", "composer"}
	qaAttributes = []string{"birthplace", "nationality", "genre", "alma mater"}
	qaAttrKinds  = map[string]string{"birthplace": "city", "nationality": "city", "genre": "word", "alma mater": "publisher"}
)

// GenerateQA materialises a multi-hop QA dataset.
func GenerateQA(spec QASpec) *QADataset {
	rng := rand.New(rand.NewSource(int64(spec.Seed)))
	d := &QADataset{Name: spec.Name}
	// The word pools are finite; once direct draws start colliding, a
	// deterministic numeric suffix keeps names unique.
	usedTitles := map[string]bool{}
	suffix := 0
	unique := func(gen func() string) string {
		for attempt := 0; attempt < 8; attempt++ {
			n := gen()
			if !usedTitles[normName(n)] {
				usedTitles[normName(n)] = true
				return n
			}
		}
		for {
			suffix++
			n := fmt.Sprintf("%s %d", gen(), suffix)
			if !usedTitles[normName(n)] {
				usedTitles[normName(n)] = true
				return n
			}
		}
	}
	freshTitle := func() string { return unique(func() string { return titleName(rng) }) }
	freshPerson := func() string { return unique(func() string { return personName(rng) }) }
	docN := 0
	addDoc := func(title, text, source string) string {
		docN++
		id := fmt.Sprintf("%s-d%04d", spec.Name, docN)
		d.Docs = append(d.Docs, Doc{ID: id, Title: title, Text: text, Source: source})
		return id
	}
	for q := 0; q < spec.Questions; q++ {
		rel := qaRelations[rng.Intn(len(qaRelations))]
		attr := qaAttributes[rng.Intn(len(qaAttributes))]
		if rng.Float64() < spec.Comparison {
			d.genComparison(rng, spec, q, attr, freshTitle, addDoc)
		} else {
			d.genBridge(rng, spec, q, rel, attr, freshTitle, freshPerson, addDoc)
		}
	}
	return d
}

// genBridge emits a 2-hop bridge question: entity —rel→ bridge —attr→ answer.
// Conflict distractors poison either hop: a forum document claims a decoy
// bridge for hop 1 (and the decoy has its own attribute document, creating a
// plausible wrong reasoning branch), or contradicts the bridge's attribute
// directly for hop 2. Methods without confidence filtering follow the decoy
// branch or average the contradiction — the hallucination cascade of §I.
func (d *QADataset) genBridge(rng *rand.Rand, spec QASpec, q int, rel, attr string,
	freshTitle, freshPerson func() string, addDoc func(title, text, source string) string) {
	entity := freshTitle()
	bridge := freshPerson()
	answer := genValue(rng, qaAttrKinds[attr])

	doc1 := addDoc(entity, fmt.Sprintf("%s is a well known work. The %s of %s is %s. Critics praised its pacing.",
		entity, rel, entity, bridge), "wiki")
	// Half of the bridge documents back-reference the work (as encyclopedia
	// pages do), making them reachable from the question by dense retrieval;
	// the other half are only reachable through the bridge entity — the
	// genuinely hard multi-hop cases.
	doc2Text := fmt.Sprintf("%s is a public figure. The %s of %s is %s. Early life details are sparse.",
		bridge, attr, bridge, answer)
	if rng.Intn(2) == 0 {
		doc2Text = fmt.Sprintf("%s is known as the %s of %s. The %s of %s is %s.",
			bridge, rel, entity, attr, bridge, answer)
	}
	doc2 := addDoc(bridge, doc2Text, "wiki")

	support := []string{doc1, doc2}
	for i := 0; i < spec.DistractorsPerQ; i++ {
		dt := freshTitle()
		switch {
		case rng.Float64() >= spec.ConflictRate:
			// Neutral distractor about an unrelated work.
			other := genValue(rng, qaAttrKinds[attr])
			addDoc(dt, fmt.Sprintf("%s covers unrelated material. The %s of %s is %s.",
				dt, attr, dt, other), "wiki")
		case i%2 == 0:
			// Hop-1 poisoning: a forum claims a decoy bridge, and the decoy
			// has its own attribute document — a complete wrong branch.
			decoy := freshPerson()
			decoyValue := genValue(rng, qaAttrKinds[attr])
			addDoc(dt, fmt.Sprintf("According to %s, the %s of %s is %s.",
				dt, rel, entity, decoy), "forum-"+dt)
			addDoc(decoy, fmt.Sprintf("%s is discussed online. The %s of %s is %s.",
				decoy, attr, decoy, decoyValue), "forum-"+dt)
		default:
			// Hop-2 poisoning: a forum contradicts the bridge's attribute.
			wrong := genValue(rng, qaAttrKinds[attr])
			addDoc(dt, fmt.Sprintf("According to %s, the %s of %s is %s. This claim is widely circulated.",
				dt, attr, bridge, wrong), "forum-"+dt)
		}
	}
	d.Questions = append(d.Questions, QAQuestion{
		ID:       fmt.Sprintf("%s-q%03d", spec.Name, q),
		Text:     fmt.Sprintf("What is the %s of the %s of %s?", attr, rel, entity),
		Type:     "bridge",
		Answer:   []string{answer},
		Support:  support,
		HopChain: []string{entity, bridge},
	})
}

// genComparison emits a comparison question over two entities' attributes.
func (d *QADataset) genComparison(rng *rand.Rand, spec QASpec, q int, attr string,
	freshTitle func() string, addDoc func(title, text, source string) string) {
	e1 := freshTitle()
	e2 := freshTitle()
	same := rng.Float64() < 0.5
	v1 := genValue(rng, qaAttrKinds[attr])
	v2 := v1
	if !same {
		for normName(v2) == normName(v1) {
			v2 = genValue(rng, qaAttrKinds[attr])
		}
	}
	doc1 := addDoc(e1, fmt.Sprintf("%s attracted attention on release. The %s of %s is %s.", e1, attr, e1, v1), "wiki")
	doc2 := addDoc(e2, fmt.Sprintf("%s had a quieter reception. The %s of %s is %s.", e2, attr, e2, v2), "wiki")
	for i := 0; i < spec.DistractorsPerQ; i++ {
		dt := freshTitle()
		if rng.Float64() < spec.ConflictRate {
			wrong := genValue(rng, qaAttrKinds[attr])
			addDoc(dt, fmt.Sprintf("According to %s, the %s of %s is %s.", dt, attr, e1, wrong), "forum-"+dt)
		} else {
			addDoc(dt, fmt.Sprintf("%s is another work entirely. The %s of %s is %s.",
				dt, attr, dt, genValue(rng, qaAttrKinds[attr])), "wiki")
		}
	}
	ans := "no"
	if same {
		ans = "yes"
	}
	d.Questions = append(d.Questions, QAQuestion{
		ID:       fmt.Sprintf("%s-q%03d", spec.Name, q),
		Text:     fmt.Sprintf("Do %s and %s have the same %s?", e1, e2, attr),
		Type:     "comparison",
		Answer:   []string{ans},
		Support:  []string{doc1, doc2},
		HopChain: []string{e1, e2},
	})
}

// DocByID returns a document by ID.
func (d *QADataset) DocByID(id string) (Doc, bool) {
	for _, doc := range d.Docs {
		if doc.ID == id {
			return doc, true
		}
	}
	return Doc{}, false
}

// Corpus renders all documents as (id, text) pairs for indexing.
func (d *QADataset) Corpus() []Doc { return d.Docs }

// String summarises the dataset.
func (d *QADataset) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d docs, %d questions", d.Name, len(d.Docs), len(d.Questions))
	return b.String()
}
