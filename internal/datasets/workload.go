package datasets

import (
	"fmt"
	"strings"
)

// QueriesFor builds a query workload restricted to a Table II source-format
// combination: it keeps only facts that remain answerable (≥1 correct claim)
// when the corpus is filtered to the given format letters, preserving the
// original query order and topping up with additional answerable facts if
// filtering starved the workload below n. An unknown format letter is an
// error, as in FilterFormats.
func (d *Dataset) QueriesFor(letters string, n int) ([]Query, error) {
	if n <= 0 {
		n = d.Spec.Queries
	}
	formatOf := map[string]string{}
	for _, s := range d.Spec.Sources {
		formatOf[s.Name] = s.Format
	}
	want, err := parseFormatLetters(letters)
	if err != nil {
		return nil, err
	}
	answerable := map[string]bool{}
	for _, c := range d.Claims {
		if c.Correct && want[formatOf[c.Source]] {
			answerable[GoldKey(c.Entity, c.Attribute)] = true
		}
	}
	var out []Query
	used := map[string]bool{}
	for _, q := range d.Queries {
		key := GoldKey(q.Entity, q.Attribute)
		if answerable[key] && !used[key] {
			used[key] = true
			out = append(out, q)
			if len(out) == n {
				return out, nil
			}
		}
	}
	// Top up from the remaining answerable facts, deterministically.
	for _, c := range d.Claims {
		if len(out) == n {
			break
		}
		key := GoldKey(c.Entity, c.Attribute)
		if !c.Correct || used[key] || !answerable[key] {
			continue
		}
		used[key] = true
		out = append(out, Query{
			ID:        fmt.Sprintf("%s-x%03d", d.Spec.Name, len(out)),
			Text:      fmt.Sprintf("What is the %s of %s?", strings.ReplaceAll(c.Attribute, "_", " "), c.Entity),
			Entity:    c.Entity,
			Attribute: c.Attribute,
			Gold:      d.Gold[key],
		})
	}
	return out, nil
}
