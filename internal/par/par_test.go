package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var sum atomic.Int64
		ForEach(workers, 100, func(i int) { sum.Add(int64(i)) })
		if got := sum.Load(); got != 4950 {
			t.Fatalf("workers=%d: sum=%d, want 4950", workers, got)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recover=%v, want boom", workers, r)
				}
			}()
			ForEach(workers, 64, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachCtxBackgroundMatchesForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEachCtx(context.Background(), 4, 100, func(i int) { sum.Add(int64(i)) }); err != nil {
		t.Fatalf("err=%v", err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum=%d, want 4950", sum.Load())
	}
}

func TestForEachCtxCancelStopsClaiming(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEachCtx(ctx, workers, 1_000_000, func(i int) {
			if ran.Add(1) == 10 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err=%v, want Canceled", workers, err)
		}
		if n := ran.Load(); n >= 1_000_000 {
			t.Fatalf("workers=%d: cancel did not stop the loop (ran %d)", workers, n)
		}
	}
}

func TestForEachCtxAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 1, 100, func(i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) || ran.Load() != 0 {
		t.Fatalf("err=%v ran=%d, want Canceled/0", err, ran.Load())
	}
}
