// Package par provides the bounded fan-out primitive shared by the ingestion
// engine: a fixed pool of goroutines draining an atomic work counter. It is a
// leaf package so that both internal/adapter and internal/core (which imports
// adapter) can use the same loop.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for i in [0, n) across at most workers goroutines
// (workers <= 0 selects GOMAXPROCS). It returns when every index has been
// processed; fn must do its own error collection (e.g. into a slice slot).
func ForEach(workers, n int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
