// Package par provides the bounded fan-out primitive shared by the ingestion
// engine: a fixed pool of goroutines draining an atomic work counter. It is a
// leaf package so that both internal/adapter and internal/core (which imports
// adapter) can use the same loop.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// panicValue wraps a recovered panic so a nil panic value still re-panics.
type panicValue struct{ v any }

// ForEach runs fn(i) for i in [0, n) across at most workers goroutines
// (workers <= 0 selects GOMAXPROCS). It returns when every index has been
// processed; fn must do its own error collection (e.g. into a slice slot).
//
// A panic in fn is re-raised on the caller's goroutine after the remaining
// workers drain — the same surface as the inline workers<=1 path — so a
// recover boundary above the fan-out contains it regardless of parallelism.
func ForEach(workers, n int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var panicked atomic.Pointer[panicValue]
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &panicValue{r})
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() != nil {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.v)
	}
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done, no
// further index is claimed (indices already running finish) and the context
// error is returned. A context that can never be canceled delegates to
// ForEach and returns nil, keeping the context-free path byte-identical to
// the original loop.
func ForEachCtx(ctx context.Context, workers, n int, fn func(int)) error {
	if ctx.Done() == nil {
		ForEach(workers, n, fn)
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var panicked atomic.Pointer[panicValue]
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &panicValue{r})
				}
			}()
			for {
				if ctx.Err() != nil || panicked.Load() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.v)
	}
	return ctx.Err()
}
