package baselines

import (
	"testing"

	"multirag/internal/adapter"
	"multirag/internal/datasets"
	"multirag/internal/eval"
	"multirag/internal/extract"
	"multirag/internal/jsonld"
	"multirag/internal/kg"
	"multirag/internal/llm"
	"multirag/internal/retrieval"
)

// newEnv builds a shared environment from a small generated dataset.
func newEnv(t *testing.T, d *datasets.Dataset) *Env {
	t.Helper()
	fused, err := adapter.NewRegistry().Fuse(d.Files)
	if err != nil {
		t.Fatalf("Fuse: %v", err)
	}
	model := llm.NewSim(llm.Config{Seed: 1, ExtractionNoise: 0.03,
		BaseHallucination: 0.03, ConflictSensitivity: 0.55})
	g := kg.New()
	if _, err := extract.NewRaw(model).Build(g, fused); err != nil {
		t.Fatalf("Build: %v", err)
	}
	ix := retrieval.NewIndex(retrieval.DefaultDim)
	for _, n := range fused {
		for _, doc := range n.JSC {
			text := chunkTextOf(doc)
			if text != "" {
				for _, c := range retrieval.ChunkText(doc.ID, n.Source, text, 64) {
					ix.Add(c)
				}
			}
		}
	}
	return &Env{Graph: g, Index: ix, Model: model}
}

// chunkTextOf verbalises a record like core.renderChunks does (duplicated
// minimally here to avoid an internal-package test dependency cycle).
func chunkTextOf(doc *jsonld.Document) string {
	if v, ok := doc.Get("text"); ok {
		return v.Str
	}
	subject := ""
	for _, k := range []string{"@key", "name", "subject"} {
		if v, ok := doc.Get(k); ok && v.Str != "" {
			subject = v.Str
			break
		}
	}
	if subject == "" {
		return ""
	}
	if p, ok := doc.Get("predicate"); ok {
		if o, oko := doc.Get("object"); oko {
			return "The " + p.Str + " of " + subject + " is " + o.Str + "."
		}
	}
	out := ""
	for _, k := range doc.Keys() {
		if k == "@key" || k == "name" {
			continue
		}
		v, _ := doc.Get(k)
		for _, val := range v.Strings() {
			out += "The " + k + " of " + subject + " is " + val + ". "
		}
	}
	return out
}

func smallDataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	spec := datasets.Movies(21)
	spec.Entities = 30
	spec.Queries = 25
	return datasets.MustGenerate(spec)
}

func TestAllMethodsAnswerFusionQueries(t *testing.T) {
	d := smallDataset(t)
	env := newEnv(t, d)
	for _, m := range All() {
		m.Setup(env)
		answered := 0
		var f1 eval.Mean
		for _, q := range d.Queries {
			got := m.AnswerFusion(q.Text, q.Entity, q.Attribute)
			if len(got) > 0 {
				answered++
			}
			_, _, f := eval.PRF1(got, q.Gold)
			f1.Add(f)
		}
		if answered == 0 {
			t.Errorf("%s answered no fusion queries", m.Name())
		}
		if f1.Value() <= 0.05 {
			t.Errorf("%s fusion F1 = %.3f — implausibly broken", m.Name(), f1.Value())
		}
		t.Logf("%-18s answered %d/%d F1=%.3f", m.Name(), answered, len(d.Queries), f1.Value())
	}
}

func TestMajorityVoteSingleAnswer(t *testing.T) {
	d := smallDataset(t)
	env := newEnv(t, d)
	mv := NewMajorityVote()
	mv.Setup(env)
	for _, q := range d.Queries {
		if got := mv.AnswerFusion(q.Text, q.Entity, q.Attribute); len(got) > 1 {
			t.Fatalf("MV must return a single value, got %v", got)
		}
	}
}

func TestTruthFinderBeatsNothingButRuns(t *testing.T) {
	d := smallDataset(t)
	env := newEnv(t, d)
	tf := NewTruthFinder()
	tf.Setup(env)
	q := d.Queries[0]
	got := tf.AnswerFusion(q.Text, q.Entity, q.Attribute)
	if len(got) == 0 {
		t.Fatal("TF returned nothing for an answerable query")
	}
}

func TestLTMSupportsMultiTruth(t *testing.T) {
	// Construct a corpus where one fact genuinely has two values, each
	// asserted by several reliable sources.
	g := kg.New()
	g.AddEntity("The Matrix", "Movie", "movies")
	for i, src := range []string{"a", "b", "c", "d"} {
		obj := "Lana Wachowski"
		if i%2 == 1 {
			obj = "Lilly Wachowski"
		}
		if _, err := g.AddTriple(kg.Triple{Subject: "the matrix", Predicate: "director", Object: obj, Source: src, Weight: 1}); err != nil {
			t.Fatal(err)
		}
		// Each source also asserts both values via a second claim set.
		other := "Lilly Wachowski"
		if i%2 == 1 {
			other = "Lana Wachowski"
		}
		if _, err := g.AddTriple(kg.Triple{Subject: "the matrix", Predicate: "director", Object: other, Source: src, Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	env := &Env{Graph: g, Index: retrieval.NewIndex(0), Model: llm.NewSim(llm.DefaultConfig())}
	ltm := NewLTM()
	ltm.Setup(env)
	got := ltm.AnswerFusion("q", "The Matrix", "director")
	if len(got) != 2 {
		t.Fatalf("LTM must recover both true values, got %v", got)
	}
}

func TestFusionQueryLearnsTrust(t *testing.T) {
	d := smallDataset(t)
	env := newEnv(t, d)
	fq := NewFusionQuery()
	fq.Setup(env)
	for _, q := range d.Queries {
		fq.AnswerFusion(q.Text, q.Entity, q.Attribute)
	}
	// After the workload, trust values must have moved off the prior.
	moved := 0
	for _, tr := range fq.trust {
		if tr != 0.6 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("FusionQuery trust never updated")
	}
}

func TestFusionQueryFasterThanTruthFinder(t *testing.T) {
	d := smallDataset(t)
	env := newEnv(t, d)
	tf := NewTruthFinder()
	tf.Setup(env)
	fq := NewFusionQuery()
	fq.Setup(env)
	q := d.Queries[0]

	var tfClock, fqClock eval.Clock
	tfClock.Start()
	for i := 0; i < 3; i++ {
		tf.AnswerFusion(q.Text, q.Entity, q.Attribute)
	}
	tfClock.Stop()
	fqClock.Start()
	for i := 0; i < 3; i++ {
		fq.AnswerFusion(q.Text, q.Entity, q.Attribute)
	}
	fqClock.Stop()
	if tfClock.Real() <= fqClock.Real() {
		t.Fatalf("on-demand TF (%v) must be slower than FusionQuery (%v)",
			tfClock.Real(), fqClock.Real())
	}
}

func TestChatKBQAUsesGraphNotChunks(t *testing.T) {
	d := smallDataset(t)
	env := newEnv(t, d)
	c := NewChatKBQA()
	c.Setup(env)
	q := d.Queries[0]
	model := env.Model.(*llm.Sim)
	model.ResetUsage()
	got := c.AnswerFusion(q.Text, q.Entity, q.Attribute)
	if len(got) == 0 {
		t.Fatal("ChatKBQA returned nothing")
	}
	// Graph lookup + one generation: no extraction calls.
	if calls := model.Usage().Calls; calls > 2 {
		t.Fatalf("ChatKBQA made %d LLM calls; it must not extract from chunks", calls)
	}
}

func TestQAContractOnMultiHop(t *testing.T) {
	spec := datasets.Hotpot(9)
	spec.Questions = 12
	qa := datasets.GenerateQA(spec)
	var files []adapter.RawFile
	for _, doc := range qa.Docs {
		files = append(files, adapter.RawFile{
			Domain: "wiki", Source: doc.Source, Name: doc.ID, Format: "text",
			Content: []byte(doc.Text),
		})
	}
	fused, err := adapter.NewRegistry().Fuse(files)
	if err != nil {
		t.Fatal(err)
	}
	model := llm.NewSim(llm.Config{Seed: 2, ExtractionNoise: 0.02})
	g := kg.New()
	if _, err := extract.NewRaw(model).Build(g, fused); err != nil {
		t.Fatal(err)
	}
	ix := retrieval.NewIndex(retrieval.DefaultDim)
	for _, n := range fused {
		for _, doc := range n.JSC {
			if v, ok := doc.Get("text"); ok {
				for _, c := range retrieval.ChunkText(doc.ID, n.Source, v.Str, 64) {
					ix.Add(c)
				}
			}
		}
	}
	env := &Env{Graph: g, Index: ix, Model: model}
	docIDFor := map[string]string{}
	for _, doc := range qa.Docs {
		docIDFor[jsonld.NormalizedID("wiki", doc.Source, doc.ID)] = doc.ID
	}
	for _, m := range All() {
		m.Setup(env)
		answeredAny := false
		recall := eval.Mean{}
		for _, q := range qa.Questions {
			ans, docs := m.AnswerQA(q.Text, 5)
			if len(ans) > 0 {
				answeredAny = true
			}
			var mapped []string
			for _, dd := range docs {
				if name, ok := docIDFor[dd]; ok {
					mapped = append(mapped, name)
				}
			}
			recall.Add(eval.RecallAtK(mapped, q.Support, 5))
		}
		if !answeredAny {
			t.Errorf("%s answered no QA questions", m.Name())
		}
		if recall.Value() <= 0.1 {
			t.Errorf("%s recall@5 = %.3f — retrieval path broken", m.Name(), recall.Value())
		}
		t.Logf("%-18s R@5=%.3f", m.Name(), recall.Value())
	}
}

func TestByName(t *testing.T) {
	if m, ok := ByName("fusionquery"); !ok || m.Name() != "FusionQuery" {
		t.Fatalf("ByName fusionquery = %v %v", m, ok)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("unknown name must not resolve")
	}
}
