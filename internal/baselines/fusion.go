package baselines

import (
	"math"
	"sort"

	"multirag/internal/kg"
)

// claim is the source-assertion view of a triple used by the pure
// data-fusion algorithms.
type claim struct {
	key    string // subject\x00predicate
	value  string // canonical value
	repr   string // surface form
	source string
}

func claimsOf(env *Env) []claim {
	g := env.Graph
	ids := g.TripleIDs()
	out := make([]claim, 0, len(ids))
	for _, id := range ids {
		t, _ := g.Triple(id)
		out = append(out, claim{
			key:    t.Key(),
			value:  kg.CanonicalID(t.Object),
			repr:   t.Object,
			source: t.Source,
		})
	}
	env.CountFetch(len(out))
	return out
}

// --- MajorityVote ---

// MajorityVote returns the single most-voted value per fact. The paper notes
// it "performs poorly on all datasets because it can only return a single
// answer", failing multi-truth queries.
type MajorityVote struct{ env *Env }

// NewMajorityVote constructs the baseline.
func NewMajorityVote() *MajorityVote { return &MajorityVote{} }

// Name implements Method.
func (*MajorityVote) Name() string { return "MV" }

// Setup implements Method.
func (m *MajorityVote) Setup(env *Env) { m.env = env }

// AnswerFusion implements Method.
func (m *MajorityVote) AnswerFusion(queryText, entity, attribute string) []string {
	ev := graphEvidence(m.env, entity, attribute)
	if top := majorityValue(ev); top != "" {
		return []string{top}
	}
	return nil
}

// AnswerQA implements Method.
func (m *MajorityVote) AnswerQA(question string, k int) ([]string, []string) {
	lf := m.env.Model.ParseQuery(question)
	docs := denseDocs(m.env, question, k)
	if lf.Intent == "multi_hop" && len(lf.Relations) >= 2 {
		bridge := majorityValue(graphEvidence(m.env, lf.Entities[0], lf.Relations[0]))
		if bridge == "" {
			return nil, docs
		}
		ans := majorityValue(graphEvidence(m.env, bridge, lf.Relations[1]))
		if ans == "" {
			return nil, docs
		}
		return []string{ans}, docs
	}
	if len(lf.Entities) > 0 && len(lf.Relations) > 0 {
		if top := majorityValue(graphEvidence(m.env, lf.Entities[0], lf.Relations[0])); top != "" {
			return []string{top}, docs
		}
	}
	return nil, docs
}

// --- TruthFinder ---

// TruthFinder implements Yin et al.'s iterative trust/confidence fixpoint
// [37]. Following the on-demand comparison protocol of FusionQuery [34], the
// full-corpus iteration re-runs for every query — which is exactly why its
// time column dwarfs everything else in Table II.
type TruthFinder struct {
	env *Env
	// Gamma is the confidence-score dampening factor; Rho the implication
	// weight between similar values (the classic parameters).
	Gamma, Rho float64
	Iterations int
}

// NewTruthFinder constructs the baseline with the classic parameters.
func NewTruthFinder() *TruthFinder {
	return &TruthFinder{Gamma: 0.3, Rho: 0.5, Iterations: 5}
}

// Name implements Method.
func (*TruthFinder) Name() string { return "TF" }

// Setup implements Method.
func (t *TruthFinder) Setup(env *Env) { t.env = env }

// run executes the full iterative fusion and returns per-(key,value)
// confidences.
func (t *TruthFinder) run() map[string]map[string]float64 {
	claims := claimsOf(t.env)
	// sources asserting each (key,value); values per key.
	assert := map[string]map[string][]string{} // key → value → sources
	for _, c := range claims {
		if assert[c.key] == nil {
			assert[c.key] = map[string][]string{}
		}
		assert[c.key][c.value] = append(assert[c.key][c.value], c.source)
	}
	trust := map[string]float64{}
	for _, c := range claims {
		trust[c.source] = 0.8
	}
	conf := map[string]map[string]float64{}
	for iter := 0; iter < t.Iterations; iter++ {
		// Fact confidence from source trustworthiness.
		for key, values := range assert {
			if conf[key] == nil {
				conf[key] = map[string]float64{}
			}
			score := map[string]float64{}
			for v, sources := range values {
				var s float64
				for _, src := range sources {
					tr := trust[src]
					if tr > 0.999 {
						tr = 0.999
					}
					s += -math.Log(1 - tr)
				}
				score[v] = s
			}
			for v := range values {
				adjusted := score[v]
				for v2, s2 := range score {
					if v2 == v {
						continue
					}
					adjusted += t.Rho * valueSim(v, v2) * s2
				}
				conf[key][v] = 1 / (1 + math.Exp(-t.Gamma*adjusted))
			}
		}
		// Source trust from fact confidence.
		sum := map[string]float64{}
		cnt := map[string]int{}
		for _, c := range claims {
			sum[c.source] += conf[c.key][c.value]
			cnt[c.source]++
		}
		for src := range trust {
			if cnt[src] > 0 {
				trust[src] = sum[src] / float64(cnt[src])
			}
		}
	}
	return conf
}

// valueSim is the implication similarity between two canonical values.
func valueSim(a, b string) float64 {
	if a == b {
		return 1
	}
	// Cheap token-overlap proxy.
	at := map[string]bool{}
	for _, tok := range splitWords(a) {
		at[tok] = true
	}
	bt := splitWords(b)
	if len(at) == 0 || len(bt) == 0 {
		return 0
	}
	hit := 0
	for _, tok := range bt {
		if at[tok] {
			hit++
		}
	}
	return float64(hit) / float64(len(at)+len(bt)-hit)
}

func splitWords(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if r == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// AnswerFusion implements Method: a full fixpoint per query (on-demand
// protocol), answering with the values within 10% of the top confidence.
func (t *TruthFinder) AnswerFusion(queryText, entity, attribute string) []string {
	conf := t.run()
	key := kg.CanonicalID(entity) + "\x00" + attribute
	values := conf[key]
	if len(values) == 0 {
		return nil
	}
	repr := map[string]string{}
	for _, tr := range t.env.Graph.TriplesByKey(kg.CanonicalID(entity), attribute) {
		repr[kg.CanonicalID(tr.Object)] = tr.Object
	}
	best := 0.0
	for _, c := range values {
		if c > best {
			best = c
		}
	}
	var out []string
	keys := sortedValueKeys(values)
	for _, v := range keys {
		if values[v] >= 0.9*best {
			out = append(out, repr[v])
		}
	}
	return out
}

// AnswerQA implements Method: TruthFinder has no QA mode; it fuses per hop.
func (t *TruthFinder) AnswerQA(question string, k int) ([]string, []string) {
	lf := t.env.Model.ParseQuery(question)
	docs := denseDocs(t.env, question, k)
	if lf.Intent == "multi_hop" && len(lf.Relations) >= 2 && len(lf.Entities) > 0 {
		bridges := t.AnswerFusion(question, lf.Entities[0], lf.Relations[0])
		if len(bridges) == 0 {
			return nil, docs
		}
		return t.AnswerFusion(question, bridges[0], lf.Relations[1]), docs
	}
	if len(lf.Entities) > 0 && len(lf.Relations) > 0 {
		return t.AnswerFusion(question, lf.Entities[0], lf.Relations[0]), docs
	}
	return nil, docs
}

func sortedValueKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// --- LTM ---

// LTM implements a simplified latent truth model [42]: each (key, value)
// carries a latent truth probability; each source two error rates (false
// positive, false negative) estimated by EM at Setup. Unlike TruthFinder it
// naturally supports multi-truth facts.
type LTM struct {
	env        *Env
	Iterations int
	posterior  map[string]map[string]float64 // key → value → P(true)
	reprs      map[string]map[string]string
}

// NewLTM constructs the baseline.
func NewLTM() *LTM { return &LTM{Iterations: 8} }

// Name implements Method.
func (*LTM) Name() string { return "LTM" }

// Setup implements Method: batch EM over the full corpus.
func (l *LTM) Setup(env *Env) {
	l.env = env
	claims := claimsOf(env)
	// Observation matrix: key → value → set of asserting sources; and the
	// set of sources covering each key at all.
	assert := map[string]map[string]map[string]bool{}
	coverage := map[string]map[string]bool{}
	l.reprs = map[string]map[string]string{}
	for _, c := range claims {
		if assert[c.key] == nil {
			assert[c.key] = map[string]map[string]bool{}
			coverage[c.key] = map[string]bool{}
			l.reprs[c.key] = map[string]string{}
		}
		if assert[c.key][c.value] == nil {
			assert[c.key][c.value] = map[string]bool{}
		}
		assert[c.key][c.value][c.source] = true
		coverage[c.key][c.source] = true
		l.reprs[c.key][c.value] = c.repr
	}
	post := map[string]map[string]float64{}
	for key, values := range assert {
		post[key] = map[string]float64{}
		for v := range values {
			post[key][v] = 0.5
		}
	}
	sens := map[string]float64{} // P(assert | true)
	fpr := map[string]float64{}  // P(assert | false)
	for _, c := range claims {
		sens[c.source] = 0.8
		fpr[c.source] = 0.2
	}
	for iter := 0; iter < l.Iterations; iter++ {
		// E step: posterior per (key,value) via naive Bayes over covering
		// sources.
		for key, values := range assert {
			for v, asserters := range values {
				logTrue, logFalse := math.Log(0.5), math.Log(0.5)
				for src := range coverage[key] {
					if asserters[src] {
						logTrue += math.Log(clampP(sens[src]))
						logFalse += math.Log(clampP(fpr[src]))
					} else {
						logTrue += math.Log(clampP(1 - sens[src]))
						logFalse += math.Log(clampP(1 - fpr[src]))
					}
				}
				m := math.Max(logTrue, logFalse)
				pt := math.Exp(logTrue - m)
				pf := math.Exp(logFalse - m)
				post[key][v] = pt / (pt + pf)
			}
		}
		// M step: source error rates from posteriors.
		var sumT, sumF, hitT, hitF map[string]float64
		sumT, sumF = map[string]float64{}, map[string]float64{}
		hitT, hitF = map[string]float64{}, map[string]float64{}
		for key, values := range assert {
			for v, asserters := range values {
				p := post[key][v]
				for src := range coverage[key] {
					sumT[src] += p
					sumF[src] += 1 - p
					if asserters[src] {
						hitT[src] += p
						hitF[src] += 1 - p
					}
				}
			}
		}
		for src := range sens {
			if sumT[src] > 0 {
				sens[src] = clampP((hitT[src] + 1) / (sumT[src] + 2)) // Beta(1,1) prior
			}
			if sumF[src] > 0 {
				fpr[src] = clampP((hitF[src] + 1) / (sumF[src] + 2))
			}
		}
	}
	l.posterior = post
}

func clampP(p float64) float64 {
	if p < 1e-6 {
		return 1e-6
	}
	if p > 1-1e-6 {
		return 1 - 1e-6
	}
	return p
}

// AnswerFusion implements Method: values with posterior above 0.5.
func (l *LTM) AnswerFusion(queryText, entity, attribute string) []string {
	key := kg.CanonicalID(entity) + "\x00" + attribute
	values := l.posterior[key]
	if len(values) == 0 {
		return nil
	}
	var out []string
	best := 0.0
	for _, p := range values {
		if p > best {
			best = p
		}
	}
	for _, v := range sortedValueKeys(values) {
		if values[v] > 0.5 || values[v] >= 0.95*best {
			out = append(out, l.reprs[key][v])
		}
	}
	return out
}

// AnswerQA implements Method.
func (l *LTM) AnswerQA(question string, k int) ([]string, []string) {
	lf := l.env.Model.ParseQuery(question)
	docs := denseDocs(l.env, question, k)
	if lf.Intent == "multi_hop" && len(lf.Relations) >= 2 && len(lf.Entities) > 0 {
		bridges := l.AnswerFusion(question, lf.Entities[0], lf.Relations[0])
		if len(bridges) == 0 {
			return nil, docs
		}
		return l.AnswerFusion(question, bridges[0], lf.Relations[1]), docs
	}
	if len(lf.Entities) > 0 && len(lf.Relations) > 0 {
		return l.AnswerFusion(question, lf.Entities[0], lf.Relations[0]), docs
	}
	return nil, docs
}

// --- FusionQuery ---

// FusionQuery implements the on-demand fusion protocol of Zhu et al. [34]:
// per query it fuses only the candidate set, maintaining per-source trust
// across queries. No LLM involvement, so it is the fastest baseline by far.
type FusionQuery struct {
	env   *Env
	trust map[string]float64
}

// NewFusionQuery constructs the baseline.
func NewFusionQuery() *FusionQuery { return &FusionQuery{trust: map[string]float64{}} }

// Name implements Method.
func (*FusionQuery) Name() string { return "FusionQuery" }

// Setup implements Method.
func (f *FusionQuery) Setup(env *Env) {
	f.env = env
	f.trust = map[string]float64{}
}

func (f *FusionQuery) sourceTrust(src string) float64 {
	if t, ok := f.trust[src]; ok {
		return t
	}
	return 0.6
}

// AnswerFusion implements Method: candidate-set EM with online trust update.
func (f *FusionQuery) AnswerFusion(queryText, entity, attribute string) []string {
	ts := f.env.Graph.TriplesByKey(kg.CanonicalID(entity), attribute)
	f.env.CountFetch(len(ts))
	if len(ts) == 0 {
		return nil
	}
	weight := map[string]float64{}
	repr := map[string]string{}
	srcsByValue := map[string][]string{}
	for _, t := range ts {
		key := kg.CanonicalID(t.Object)
		weight[key] += f.sourceTrust(t.Source) * t.Weight
		if _, ok := repr[key]; !ok {
			repr[key] = t.Object
		}
		srcsByValue[key] = append(srcsByValue[key], t.Source)
	}
	best := 0.0
	for _, w := range weight {
		if w > best {
			best = w
		}
	}
	var out []string
	accepted := map[string]bool{}
	for _, v := range sortedValueKeys(weight) {
		if weight[v] >= 0.6*best {
			out = append(out, repr[v])
			accepted[v] = true
		}
	}
	// Online trust update: sources agreeing with accepted values drift up,
	// disagreeing ones drift down.
	for v, srcs := range srcsByValue {
		delta := -0.05
		if accepted[v] {
			delta = 0.05
		}
		for _, src := range srcs {
			nt := f.sourceTrust(src) + delta
			if nt < 0.05 {
				nt = 0.05
			}
			if nt > 0.99 {
				nt = 0.99
			}
			f.trust[src] = nt
		}
	}
	return out
}

// AnswerQA implements Method.
func (f *FusionQuery) AnswerQA(question string, k int) ([]string, []string) {
	lf := f.env.Model.ParseQuery(question)
	docs := denseDocs(f.env, question, k)
	if lf.Intent == "multi_hop" && len(lf.Relations) >= 2 && len(lf.Entities) > 0 {
		bridges := f.AnswerFusion(question, lf.Entities[0], lf.Relations[0])
		if len(bridges) == 0 {
			return nil, docs
		}
		return f.AnswerFusion(question, bridges[0], lf.Relations[1]), docs
	}
	if len(lf.Entities) > 0 && len(lf.Relations) > 0 {
		return f.AnswerFusion(question, lf.Entities[0], lf.Relations[0]), docs
	}
	return nil, docs
}

var _ = []Method{(*MajorityVote)(nil), (*TruthFinder)(nil), (*LTM)(nil), (*FusionQuery)(nil)}
