// Package baselines implements every comparison method of §IV-A(d) over the
// same corpus substrate MultiRAG uses (knowledge graph + chunk index +
// simulated LLM):
//
//   - data-fusion baselines: MajorityVote, TruthFinder [37], LTM [42]
//   - SOTA retrieval baselines: IR-CoT [44], MDQA [46], ChatKBQA [45],
//     FusionQuery [34], Standard RAG [2], GPT-3.5+CoT [43], RQ-RAG [47],
//     MetaRAG [9]
//
// Each method implements both the fusion-query contract (Table II) and the
// multi-hop QA contract (Table IV). None of them performs multi-level
// confidence filtering — that is MultiRAG's contribution — so conflicting
// evidence reaches their LLM context unfiltered and the simulated model's
// conflict-sensitive hallucination applies.
package baselines

import (
	"sort"
	"strings"

	"multirag/internal/kg"
	"multirag/internal/llm"
	"multirag/internal/retrieval"
)

// Env is the shared substrate a method runs against. Fetches counts the
// source records a method touched; the harness prices each fetch on the
// virtual clock (deep-web record access — the dominant cost of batch fusion
// per the FusionQuery comparison protocol [34]).
type Env struct {
	Graph   *kg.Graph
	Index   *retrieval.Index
	Model   llm.Model
	Fetches int
}

// CountFetch charges n source-record accesses.
func (e *Env) CountFetch(n int) { e.Fetches += n }

// Method is the uniform baseline contract.
type Method interface {
	// Name returns the method's display name, matching the paper's tables.
	Name() string
	// Setup binds the environment and performs any batch precomputation.
	Setup(env *Env)
	// AnswerFusion resolves a fusion query (Table II): the value(s) of
	// attribute for entity.
	AnswerFusion(queryText, entity, attribute string) []string
	// AnswerQA resolves a multi-hop question (Table IV), returning the
	// answer values and the top-k retrieved document IDs for Recall@K.
	AnswerQA(question string, k int) (answer []string, docs []string)
}

// --- shared helpers ---

// graphEvidence returns the unfiltered claims for (entity, attribute) from
// the knowledge graph.
func graphEvidence(env *Env, entity, attribute string) []llm.Evidence {
	var ev []llm.Evidence
	for _, t := range env.Graph.TriplesByKey(kg.CanonicalID(entity), attribute) {
		ev = append(ev, llm.Evidence{Value: t.Object, Weight: t.Weight, Source: t.Source})
	}
	env.CountFetch(len(ev))
	return ev
}

// chunkEvidence retrieves top-k chunks for the query, extracts triples with
// the LLM and keeps those matching (entity, attribute). No filtering.
func chunkEvidence(env *Env, query, entity, attribute string, k int) []llm.Evidence {
	subj := kg.CanonicalID(entity)
	var ev []llm.Evidence
	for _, h := range env.Index.Search(query, k) {
		mentions := env.Model.ExtractEntities(h.Chunk.Text)
		for _, spo := range env.Model.ExtractTriples(h.Chunk.Text, mentions) {
			if kg.CanonicalID(spo.Subject) == subj && spo.Predicate == attribute {
				ev = append(ev, llm.Evidence{Value: spo.Object, Weight: spo.Confidence, Source: h.Chunk.Source})
			}
		}
	}
	return ev
}

// denseDocs returns the top-k distinct document IDs by dense similarity.
func denseDocs(env *Env, query string, k int) []string {
	var out []string
	seen := map[string]bool{}
	for _, h := range env.Index.Search(query, k*3) {
		d := docOfChunk(h.Chunk.DocID)
		if d != "" && !seen[d] {
			seen[d] = true
			out = append(out, d)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// docOfChunk strips record suffixes from a jsonld document ID, recovering the
// ingested file identity.
func docOfChunk(chunkID string) string {
	if i := strings.Index(chunkID, "#"); i >= 0 {
		if j := strings.Index(chunkID[i:], "/"); j >= 0 {
			return chunkID[:i+j]
		}
	}
	return chunkID
}

// mergeDocs concatenates ranked doc lists, deduplicating, capped at k.
func mergeDocs(k int, lists ...[]string) []string {
	var out []string
	seen := map[string]bool{}
	for _, list := range lists {
		for _, d := range list {
			if d != "" && !seen[d] {
				seen[d] = true
				out = append(out, d)
				if len(out) == k {
					return out
				}
			}
		}
	}
	return out
}

// hopQuery renders a single-hop question.
func hopQuery(relation, entity string) string {
	return "What is the " + strings.ReplaceAll(relation, "_", " ") + " of " + entity + "?"
}

// majorityValue returns the most supported value of an evidence set ("" when
// empty), with deterministic tie-breaking.
func majorityValue(ev []llm.Evidence) string {
	weights := map[string]float64{}
	repr := map[string]string{}
	for _, e := range ev {
		key := kg.CanonicalID(e.Value)
		w := e.Weight
		if w <= 0 {
			w = 1
		}
		weights[key] += w
		if _, ok := repr[key]; !ok {
			repr[key] = e.Value
		}
	}
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if weights[keys[i]] != weights[keys[j]] {
			return weights[keys[i]] > weights[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) == 0 {
		return ""
	}
	return repr[keys[0]]
}

// comparisonAnswer reduces two value sets to yes/no.
func comparisonAnswer(v1, v2 []string) []string {
	set := map[string]bool{}
	for _, v := range v1 {
		set[kg.CanonicalID(v)] = true
	}
	for _, v := range v2 {
		if set[kg.CanonicalID(v)] {
			return []string{"yes"}
		}
	}
	return []string{"no"}
}

// All returns one instance of every baseline, in the paper's table order.
func All() []Method {
	return []Method{
		NewMajorityVote(),
		NewTruthFinder(),
		NewLTM(),
		NewStandardRAG(),
		NewCoT(),
		NewIRCoT(),
		NewChatKBQA(),
		NewMDQA(),
		NewFusionQuery(),
		NewRQRAG(),
		NewMetaRAG(),
	}
}

// ByName returns the named baseline.
func ByName(name string) (Method, bool) {
	for _, m := range All() {
		if strings.EqualFold(m.Name(), name) {
			return m, true
		}
	}
	return nil, false
}
