package baselines

import (
	"fmt"

	"multirag/internal/kg"
	"multirag/internal/llm"
	"multirag/internal/textutil"
)

// ragBase carries the environment for the LLM-pipeline baselines.
type ragBase struct{ env *Env }

// Setup implements the shared binding.
func (b *ragBase) Setup(env *Env) { b.env = env }

// --- Standard RAG [2] ---

// StandardRAG performs single-shot dense retrieval with the whole question
// and answers from whatever the top chunks contain — no hop decomposition,
// no filtering. Multi-hop questions usually retrieve only one of the two
// supporting documents, which is why its Table IV numbers are lowest.
type StandardRAG struct{ ragBase }

// NewStandardRAG constructs the baseline.
func NewStandardRAG() *StandardRAG { return &StandardRAG{} }

// Name implements Method.
func (*StandardRAG) Name() string { return "Standard RAG" }

// AnswerFusion implements Method.
func (s *StandardRAG) AnswerFusion(queryText, entity, attribute string) []string {
	ev := chunkEvidence(s.env, queryText, entity, attribute, 5)
	return s.env.Model.GenerateAnswer(queryText, ev)
}

// AnswerQA implements Method: one retrieval round with the whole question,
// then in-context chaining over whatever the top chunks contain. When the
// second-hop document was not retrieved — the common multi-hop failure — the
// model answers from unrelated attribute mentions and hallucinates.
func (s *StandardRAG) AnswerQA(question string, k int) ([]string, []string) {
	lf := s.env.Model.ParseQuery(question)
	docs := denseDocs(s.env, question, k)
	target := ""
	if len(lf.Relations) > 0 {
		target = lf.Relations[len(lf.Relations)-1]
	}
	// Extract every triple in the retrieved context.
	var all []llm.SPO
	var sources []string
	for _, h := range s.env.Index.Search(question, 5) {
		mentions := s.env.Model.ExtractEntities(h.Chunk.Text)
		for _, spo := range s.env.Model.ExtractTriples(h.Chunk.Text, mentions) {
			all = append(all, spo)
			sources = append(sources, h.Chunk.Source)
		}
	}
	var ev []llm.Evidence
	if lf.Intent == "multi_hop" && len(lf.Relations) >= 2 && len(lf.Entities) > 0 {
		// In-context chaining: find the bridge in the retrieved triples,
		// then the bridge's attribute in the same context.
		subj := kg.CanonicalID(lf.Entities[0])
		bridges := map[string]bool{}
		for _, spo := range all {
			if kg.CanonicalID(spo.Subject) == subj && spo.Predicate == lf.Relations[0] {
				bridges[kg.CanonicalID(spo.Object)] = true
			}
		}
		for i, spo := range all {
			if spo.Predicate == lf.Relations[1] && bridges[kg.CanonicalID(spo.Subject)] {
				ev = append(ev, llm.Evidence{Value: spo.Object, Weight: spo.Confidence, Source: sources[i]})
			}
		}
		// Desperate fallback: any mention of the target attribute.
		if len(ev) == 0 {
			for i, spo := range all {
				if spo.Predicate == lf.Relations[1] {
					ev = append(ev, llm.Evidence{Value: spo.Object, Weight: 0.4 * spo.Confidence, Source: sources[i]})
				}
			}
		}
	} else {
		for i, spo := range all {
			if target == "" || spo.Predicate == target {
				ev = append(ev, llm.Evidence{Value: spo.Object, Weight: spo.Confidence, Source: sources[i]})
			}
		}
	}
	if lf.Intent == "comparison" && len(lf.Entities) >= 2 {
		v1 := chunkEvidence(s.env, hopQuery(target, lf.Entities[0]), lf.Entities[0], target, 3)
		v2 := chunkEvidence(s.env, hopQuery(target, lf.Entities[1]), lf.Entities[1], target, 3)
		if len(v1) == 0 || len(v2) == 0 {
			return nil, docs
		}
		return comparisonAnswer(
			s.env.Model.GenerateAnswer(question+" [1]", v1),
			s.env.Model.GenerateAnswer(question+" [2]", v2)), docs
	}
	if len(ev) == 0 {
		return nil, docs
	}
	return s.env.Model.GenerateAnswer(question, ev), docs
}

// --- GPT-3.5-Turbo + CoT [43] ---

// CoT reasons step by step from the model's parametric knowledge with only a
// shallow peek at the corpus (simulating what a strong closed-book model
// recalls): roughly half the corpus-specific facts are simply not in its
// memory, in which case it reasons itself into a fabricated value. Its
// document ranking is plain dense similarity — it performs no iterative
// retrieval.
type CoT struct{ ragBase }

// recallMiss deterministically decides whether the closed-book model has no
// memory of the fact behind the question.
func (c *CoT) recallMiss(question string) bool {
	return textutil.Hash01("cot-memory|"+question) < 0.45
}

// NewCoT constructs the baseline.
func NewCoT() *CoT { return &CoT{} }

// Name implements Method.
func (*CoT) Name() string { return "GPT-3.5-Turbo+CoT" }

// AnswerFusion implements Method.
func (c *CoT) AnswerFusion(queryText, entity, attribute string) []string {
	// Closed-book: only two chunks of "remembered" context.
	ev := chunkEvidence(c.env, queryText, entity, attribute, 2)
	return c.env.Model.GenerateAnswer("cot|"+queryText, ev)
}

// AnswerQA implements Method: step-by-step decomposition over parametric
// memory; no retrieval loop, so the document ranking stays dense-only.
func (c *CoT) AnswerQA(question string, k int) ([]string, []string) {
	lf := c.env.Model.ParseQuery(question)
	docs := denseDocs(c.env, question, k)
	if c.recallMiss(question) {
		// The fact is not in memory: the chain of thought converges on a
		// plausible fabrication.
		fabricated := "plausible guess " + question
		if len(lf.Entities) > 0 {
			fabricated = lf.Entities[0] + " fact " + fmt.Sprint(textutil.Hash64(question)%97)
		}
		return []string{fabricated}, docs
	}
	if lf.Intent == "multi_hop" && len(lf.Relations) >= 2 && len(lf.Entities) > 0 {
		h1 := hopQuery(lf.Relations[0], lf.Entities[0])
		ev1 := chunkEvidence(c.env, h1, lf.Entities[0], lf.Relations[0], 2)
		bridges := c.env.Model.GenerateAnswer("cot|"+h1, ev1)
		if len(bridges) == 0 {
			return nil, docs
		}
		h2 := hopQuery(lf.Relations[1], bridges[0])
		ev2 := chunkEvidence(c.env, h2, bridges[0], lf.Relations[1], 2)
		if len(ev2) == 0 {
			return nil, docs
		}
		return c.env.Model.GenerateAnswer("cot|"+question, ev2), docs
	}
	if lf.Intent == "comparison" && len(lf.Entities) >= 2 && len(lf.Relations) > 0 {
		rel := lf.Relations[0]
		v1 := chunkEvidence(c.env, hopQuery(rel, lf.Entities[0]), lf.Entities[0], rel, 2)
		v2 := chunkEvidence(c.env, hopQuery(rel, lf.Entities[1]), lf.Entities[1], rel, 2)
		if len(v1) == 0 || len(v2) == 0 {
			return nil, docs
		}
		return comparisonAnswer(
			c.env.Model.GenerateAnswer("cot|"+question+" [1]", v1),
			c.env.Model.GenerateAnswer("cot|"+question+" [2]", v2)), docs
	}
	if len(lf.Entities) > 0 && len(lf.Relations) > 0 {
		ev := chunkEvidence(c.env, question, lf.Entities[0], lf.Relations[0], 2)
		return c.env.Model.GenerateAnswer("cot|"+question, ev), docs
	}
	return nil, docs
}

// --- IR-CoT [44] ---

// IRCoT interleaves retrieval with chain-of-thought: each reasoning step
// issues its own retrieval, so multi-hop recall is good; nothing filters
// conflicting evidence.
type IRCoT struct{ ragBase }

// NewIRCoT constructs the baseline.
func NewIRCoT() *IRCoT { return &IRCoT{} }

// Name implements Method.
func (*IRCoT) Name() string { return "IRCoT" }

// AnswerFusion implements Method.
func (i *IRCoT) AnswerFusion(queryText, entity, attribute string) []string {
	// Two retrieval rounds: the question itself, then a refinement with the
	// attribute spelled out.
	ev := chunkEvidence(i.env, queryText, entity, attribute, 5)
	ev = append(ev, chunkEvidence(i.env, hopQuery(attribute, entity), entity, attribute, 5)...)
	return i.env.Model.GenerateAnswer(queryText, ev)
}

// AnswerQA implements Method.
func (i *IRCoT) AnswerQA(question string, k int) ([]string, []string) {
	lf := i.env.Model.ParseQuery(question)
	docs := denseDocs(i.env, question, k)
	if lf.Intent == "multi_hop" && len(lf.Relations) >= 2 && len(lf.Entities) > 0 {
		h1 := hopQuery(lf.Relations[0], lf.Entities[0])
		ev1 := chunkEvidence(i.env, h1, lf.Entities[0], lf.Relations[0], 5)
		bridges := i.env.Model.GenerateAnswer(h1, ev1)
		if len(bridges) == 0 {
			return nil, docs
		}
		h2 := hopQuery(lf.Relations[1], bridges[0])
		ev2 := chunkEvidence(i.env, h2, bridges[0], lf.Relations[1], 5)
		docs = mergeDocs(k, denseDocs(i.env, h1, 2), denseDocs(i.env, h2, 2), docs)
		if len(ev2) == 0 {
			return nil, docs
		}
		return i.env.Model.GenerateAnswer(question, ev2), docs
	}
	if lf.Intent == "comparison" && len(lf.Entities) >= 2 && len(lf.Relations) > 0 {
		rel := lf.Relations[0]
		v1 := chunkEvidence(i.env, hopQuery(rel, lf.Entities[0]), lf.Entities[0], rel, 5)
		v2 := chunkEvidence(i.env, hopQuery(rel, lf.Entities[1]), lf.Entities[1], rel, 5)
		docs = mergeDocs(k, denseDocs(i.env, hopQuery(rel, lf.Entities[0]), 2),
			denseDocs(i.env, hopQuery(rel, lf.Entities[1]), 2), docs)
		if len(v1) == 0 || len(v2) == 0 {
			return nil, docs
		}
		return comparisonAnswer(
			i.env.Model.GenerateAnswer(question+" [1]", v1),
			i.env.Model.GenerateAnswer(question+" [2]", v2)), docs
	}
	if len(lf.Entities) > 0 && len(lf.Relations) > 0 {
		return i.AnswerFusion(question, lf.Entities[0], lf.Relations[0]), docs
	}
	return nil, docs
}

// --- ChatKBQA [45] ---

// ChatKBQA generates a logic form and retrieves directly from the knowledge
// graph — excellent recall, but every conflicting graph claim lands in the
// context unweighted, which is why Fig. 5 shows it degrading steeply under
// consistency perturbation.
type ChatKBQA struct{ ragBase }

// NewChatKBQA constructs the baseline.
func NewChatKBQA() *ChatKBQA { return &ChatKBQA{} }

// Name implements Method.
func (*ChatKBQA) Name() string { return "ChatKBQA" }

// AnswerFusion implements Method.
func (c *ChatKBQA) AnswerFusion(queryText, entity, attribute string) []string {
	ev := graphEvidence(c.env, entity, attribute)
	if len(ev) == 0 {
		return nil
	}
	return c.env.Model.GenerateAnswer(queryText, ev)
}

// AnswerQA implements Method.
func (c *ChatKBQA) AnswerQA(question string, k int) ([]string, []string) {
	lf := c.env.Model.ParseQuery(question)
	docs := denseDocs(c.env, question, k)
	if lf.Intent == "multi_hop" && len(lf.Relations) >= 2 && len(lf.Entities) > 0 {
		bridges := c.AnswerFusion(question, lf.Entities[0], lf.Relations[0])
		if len(bridges) == 0 {
			return nil, docs
		}
		docs = mergeDocs(k, graphDocs(c.env, bridges[0], lf.Relations[1]),
			graphDocs(c.env, lf.Entities[0], lf.Relations[0]), docs)
		return c.AnswerFusion(question, bridges[0], lf.Relations[1]), docs
	}
	if lf.Intent == "comparison" && len(lf.Entities) >= 2 && len(lf.Relations) > 0 {
		rel := lf.Relations[0]
		v1 := c.AnswerFusion(question+" [1]", lf.Entities[0], rel)
		v2 := c.AnswerFusion(question+" [2]", lf.Entities[1], rel)
		if v1 == nil || v2 == nil {
			return nil, docs
		}
		return comparisonAnswer(v1, v2), docs
	}
	if len(lf.Entities) > 0 && len(lf.Relations) > 0 {
		return c.AnswerFusion(question, lf.Entities[0], lf.Relations[0]), docs
	}
	return nil, docs
}

// graphDocs lists the provenance documents behind a graph key.
func graphDocs(env *Env, entity, attribute string) []string {
	var out []string
	for _, t := range env.Graph.TriplesByKey(kg.CanonicalID(entity), attribute) {
		if d := docOfChunk(t.ChunkID); d != "" {
			out = append(out, d)
		}
	}
	return out
}

// --- MDQA [46] ---

// MDQA builds a per-query knowledge subgraph from retrieved documents (KG
// prompting) and answers over it; wider retrieval than Standard RAG, still
// no confidence weighting.
type MDQA struct{ ragBase }

// NewMDQA constructs the baseline.
func NewMDQA() *MDQA { return &MDQA{} }

// Name implements Method.
func (*MDQA) Name() string { return "MDQA" }

// AnswerFusion implements Method.
func (m *MDQA) AnswerFusion(queryText, entity, attribute string) []string {
	ev := chunkEvidence(m.env, queryText, entity, attribute, 8)
	if len(ev) == 0 {
		ev = graphEvidence(m.env, entity, attribute)
	}
	if len(ev) == 0 {
		return nil
	}
	return m.env.Model.GenerateAnswer(queryText, ev)
}

// AnswerQA implements Method.
func (m *MDQA) AnswerQA(question string, k int) ([]string, []string) {
	lf := m.env.Model.ParseQuery(question)
	docs := denseDocs(m.env, question, k)
	if lf.Intent == "multi_hop" && len(lf.Relations) >= 2 && len(lf.Entities) > 0 {
		bridges := m.AnswerFusion(question, lf.Entities[0], lf.Relations[0])
		if len(bridges) == 0 {
			return nil, docs
		}
		h2 := hopQuery(lf.Relations[1], bridges[0])
		docs = mergeDocs(k, denseDocs(m.env, h2, 2), docs)
		return m.AnswerFusion(question, bridges[0], lf.Relations[1]), docs
	}
	if lf.Intent == "comparison" && len(lf.Entities) >= 2 && len(lf.Relations) > 0 {
		rel := lf.Relations[0]
		v1 := m.AnswerFusion(question+" [1]", lf.Entities[0], rel)
		v2 := m.AnswerFusion(question+" [2]", lf.Entities[1], rel)
		if v1 == nil || v2 == nil {
			return nil, docs
		}
		return comparisonAnswer(v1, v2), docs
	}
	if len(lf.Entities) > 0 && len(lf.Relations) > 0 {
		return m.AnswerFusion(question, lf.Entities[0], lf.Relations[0]), docs
	}
	return nil, docs
}

// --- RQ-RAG [47] ---

// RQRAG refines the query into sub-queries and merges their retrievals,
// improving coverage over Standard RAG without any trust model.
type RQRAG struct{ ragBase }

// NewRQRAG constructs the baseline.
func NewRQRAG() *RQRAG { return &RQRAG{} }

// Name implements Method.
func (*RQRAG) Name() string { return "RQ-RAG" }

// AnswerFusion implements Method.
func (r *RQRAG) AnswerFusion(queryText, entity, attribute string) []string {
	ev := chunkEvidence(r.env, queryText, entity, attribute, 4)
	ev = append(ev, chunkEvidence(r.env, entity+" "+attribute, entity, attribute, 4)...)
	ev = append(ev, chunkEvidence(r.env, hopQuery(attribute, entity), entity, attribute, 4)...)
	if len(ev) == 0 {
		return nil
	}
	return r.env.Model.GenerateAnswer(queryText, ev)
}

// AnswerQA implements Method.
func (r *RQRAG) AnswerQA(question string, k int) ([]string, []string) {
	lf := r.env.Model.ParseQuery(question)
	docs := denseDocs(r.env, question, k)
	if lf.Intent == "multi_hop" && len(lf.Relations) >= 2 && len(lf.Entities) > 0 {
		h1 := hopQuery(lf.Relations[0], lf.Entities[0])
		bridges := r.env.Model.GenerateAnswer(h1, chunkEvidence(r.env, h1, lf.Entities[0], lf.Relations[0], 4))
		if len(bridges) == 0 {
			return nil, docs
		}
		h2 := hopQuery(lf.Relations[1], bridges[0])
		docs = mergeDocs(k, denseDocs(r.env, h1, 2), denseDocs(r.env, h2, 2), docs)
		ev := chunkEvidence(r.env, h2, bridges[0], lf.Relations[1], 4)
		ev = append(ev, chunkEvidence(r.env, bridges[0]+" "+lf.Relations[1], bridges[0], lf.Relations[1], 4)...)
		if len(ev) == 0 {
			return nil, docs
		}
		return r.env.Model.GenerateAnswer(question, ev), docs
	}
	if lf.Intent == "comparison" && len(lf.Entities) >= 2 && len(lf.Relations) > 0 {
		rel := lf.Relations[0]
		v1 := r.AnswerFusion(question+" [1]", lf.Entities[0], rel)
		v2 := r.AnswerFusion(question+" [2]", lf.Entities[1], rel)
		if v1 == nil || v2 == nil {
			return nil, docs
		}
		return comparisonAnswer(v1, v2), docs
	}
	if len(lf.Entities) > 0 && len(lf.Relations) > 0 {
		return r.AnswerFusion(question, lf.Entities[0], lf.Relations[0]), docs
	}
	return nil, docs
}

// --- MetaRAG [9] ---

// MetaRAG adds a metacognitive check: after answering, it verifies the
// answer against the majority of the evidence and regenerates from the
// agreeing subset when it detects divergence — a partial, answer-level
// defence against conflict (MultiRAG filters at the knowledge level instead).
type MetaRAG struct{ ragBase }

// NewMetaRAG constructs the baseline.
func NewMetaRAG() *MetaRAG { return &MetaRAG{} }

// Name implements Method.
func (*MetaRAG) Name() string { return "MetaRAG" }

func (m *MetaRAG) generateChecked(question string, ev []llm.Evidence) []string {
	if len(ev) == 0 {
		return nil
	}
	ans := m.env.Model.GenerateAnswer(question, ev)
	if len(ans) == 0 {
		return ans
	}
	// Metacognitive verification: does the answer agree with the weighted
	// majority? If not, retry once on the majority subset.
	major := majorityValue(ev)
	if major == "" || kg.CanonicalID(ans[0]) == kg.CanonicalID(major) {
		return ans
	}
	var agree []llm.Evidence
	for _, e := range ev {
		if kg.CanonicalID(e.Value) == kg.CanonicalID(major) {
			agree = append(agree, e)
		}
	}
	return m.env.Model.GenerateAnswer("retry|"+question, agree)
}

// AnswerFusion implements Method.
func (m *MetaRAG) AnswerFusion(queryText, entity, attribute string) []string {
	ev := chunkEvidence(m.env, queryText, entity, attribute, 6)
	if len(ev) == 0 {
		ev = graphEvidence(m.env, entity, attribute)
	}
	return m.generateChecked(queryText, ev)
}

// AnswerQA implements Method.
func (m *MetaRAG) AnswerQA(question string, k int) ([]string, []string) {
	lf := m.env.Model.ParseQuery(question)
	docs := denseDocs(m.env, question, k)
	if lf.Intent == "multi_hop" && len(lf.Relations) >= 2 && len(lf.Entities) > 0 {
		h1 := hopQuery(lf.Relations[0], lf.Entities[0])
		bridges := m.generateChecked(h1, chunkEvidence(m.env, h1, lf.Entities[0], lf.Relations[0], 5))
		if len(bridges) == 0 {
			return nil, docs
		}
		h2 := hopQuery(lf.Relations[1], bridges[0])
		docs = mergeDocs(k, denseDocs(m.env, h1, 2), denseDocs(m.env, h2, 2), docs)
		return m.generateChecked(question, chunkEvidence(m.env, h2, bridges[0], lf.Relations[1], 5)), docs
	}
	if lf.Intent == "comparison" && len(lf.Entities) >= 2 && len(lf.Relations) > 0 {
		rel := lf.Relations[0]
		v1 := m.generateChecked(question+" [1]", chunkEvidence(m.env, hopQuery(rel, lf.Entities[0]), lf.Entities[0], rel, 5))
		v2 := m.generateChecked(question+" [2]", chunkEvidence(m.env, hopQuery(rel, lf.Entities[1]), lf.Entities[1], rel, 5))
		if v1 == nil || v2 == nil {
			return nil, docs
		}
		return comparisonAnswer(v1, v2), docs
	}
	if len(lf.Entities) > 0 && len(lf.Relations) > 0 {
		return m.AnswerFusion(question, lf.Entities[0], lf.Relations[0]), docs
	}
	return nil, docs
}

var _ = []Method{
	(*StandardRAG)(nil), (*CoT)(nil), (*IRCoT)(nil), (*ChatKBQA)(nil),
	(*MDQA)(nil), (*RQRAG)(nil), (*MetaRAG)(nil),
}
