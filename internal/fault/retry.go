package fault

import (
	"context"
	"errors"
	"time"
)

// RetryPolicy bounds a retry loop: up to Attempts tries, sleeping Backoff
// before the second try and doubling up to MaxBackoff. The backoff is
// deterministic (no jitter) — the engine's determinism pins extend to its
// failure handling, and the fleet-level thundering-herd argument for jitter
// does not apply to in-process stage retries.
type RetryPolicy struct {
	Attempts   int
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// DefaultRetry is the stage-retry policy: three tries, 1ms then 2ms between
// them — enough to ride out a transient injected error without adding
// human-visible latency to a degraded request.
var DefaultRetry = RetryPolicy{Attempts: 3, Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}

// Retry runs fn until it succeeds, the attempts are spent, the context ends,
// or fn returns a non-retryable error. Context errors and ErrOpen are never
// retried: a canceled request must release its slot now, and hammering an
// open breaker defeats its purpose. Sleeps are context-aware.
func Retry(ctx context.Context, p RetryPolicy, fn func() error) error {
	if p.Attempts <= 0 {
		p.Attempts = 1
	}
	backoff := p.Backoff
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 && backoff > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
			backoff *= 2
			if p.MaxBackoff > 0 && backoff > p.MaxBackoff {
				backoff = p.MaxBackoff
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		err = fn()
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrOpen) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return err
}
