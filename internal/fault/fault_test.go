package fault

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestInjectUnarmedIsNoop(t *testing.T) {
	t.Cleanup(Reset)
	if err := Inject(context.Background(), PointLLMGenerate); err != nil {
		t.Fatalf("unarmed Inject = %v, want nil", err)
	}
}

func TestInjectError(t *testing.T) {
	t.Cleanup(Reset)
	Enable("p", Fault{Kind: KindError})
	if err := Inject(context.Background(), "p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Inject = %v, want ErrInjected", err)
	}
	custom := errors.New("boom")
	Enable("p", Fault{Kind: KindError, Err: custom})
	if err := Inject(context.Background(), "p"); !errors.Is(err, custom) {
		t.Fatalf("Inject = %v, want custom error", err)
	}
	// Other points stay unarmed.
	if err := Inject(context.Background(), "q"); err != nil {
		t.Fatalf("Inject(other) = %v, want nil", err)
	}
}

func TestInjectMaxHits(t *testing.T) {
	t.Cleanup(Reset)
	Enable("p", Fault{Kind: KindError, MaxHits: 2})
	for i := 0; i < 2; i++ {
		if err := Inject(context.Background(), "p"); err == nil {
			t.Fatalf("hit %d: want error", i)
		}
	}
	if err := Inject(context.Background(), "p"); err != nil {
		t.Fatalf("after budget spent: Inject = %v, want nil", err)
	}
	if got := Hits("p"); got != 2 {
		t.Fatalf("Hits = %d, want 2", got)
	}
}

func TestInjectLatencyHonorsContext(t *testing.T) {
	t.Cleanup(Reset)
	Enable("p", Fault{Kind: KindLatency, Latency: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	start := time.Now()
	err := Inject(ctx, "p")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Inject = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("latency fault ignored cancel, took %v", d)
	}
}

func TestHangReleasedByCancelAndDisable(t *testing.T) {
	t.Cleanup(Reset)
	Enable("p", Fault{Kind: KindHang})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 2)
	go func() { done <- Inject(ctx, "p") }()
	go func() { done <- Inject(context.Background(), "p") }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled hang = %v, want context.Canceled", err)
	}
	Disable("p")
	if err := <-done; err != nil {
		t.Fatalf("released hang = %v, want nil", err)
	}
}

func TestInjectPanics(t *testing.T) {
	t.Cleanup(Reset)
	Enable("p", Fault{Kind: KindPanic})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	_ = Inject(context.Background(), "p")
}

func TestArmedList(t *testing.T) {
	t.Cleanup(Reset)
	Enable("b", Fault{Kind: KindError})
	Enable("a", Fault{Kind: KindError})
	got := Armed()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Armed = %v, want [a b]", got)
	}
	Reset()
	if len(Armed()) != 0 {
		t.Fatal("Reset left faults armed")
	}
}

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	b := NewBreaker("test", 3, time.Second, now)

	boom := errors.New("boom")
	fail := func() error { return boom }
	ok := func() error { return nil }

	for i := 0; i < 3; i++ {
		if err := b.Do(fail); !errors.Is(err, boom) {
			t.Fatalf("call %d = %v, want boom", i, err)
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Do(ok); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker = %v, want ErrOpen", err)
	}

	// Cooldown elapses; a failing probe re-opens.
	clock = clock.Add(time.Second)
	if err := b.Do(fail); !errors.Is(err, boom) {
		t.Fatalf("probe = %v, want boom (probe admitted)", err)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}

	// Another cooldown; a succeeding probe closes it again.
	clock = clock.Add(time.Second)
	if err := b.Do(ok); err != nil {
		t.Fatalf("probe = %v, want nil", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after good probe = %v, want closed", b.State())
	}

	st := b.Stats()
	if st.Trips != 2 || st.FastFails != 1 || st.Successes != 1 {
		t.Fatalf("stats = %+v, want trips=2 fastFails=1 successes=1", st)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker("test", 1, time.Second, func() time.Time { return clock })
	_ = b.Do(func() error { return errors.New("x") })
	clock = clock.Add(2 * time.Second)

	// First caller takes the probe slot and blocks; a concurrent caller must
	// fast-fail rather than stack a second probe.
	probeStarted := make(chan struct{})
	probeRelease := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = b.Do(func() error {
			close(probeStarted)
			<-probeRelease
			return nil
		})
	}()
	<-probeStarted
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("second half-open call = %v, want ErrOpen", err)
	}
	close(probeRelease)
	wg.Wait()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestRetryTransientThenSuccess(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryPolicy{Attempts: 3, Backoff: time.Microsecond}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
}

func TestRetryExhausted(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Retry(context.Background(), RetryPolicy{Attempts: 2, Backoff: time.Microsecond}, func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 2 {
		t.Fatalf("err=%v calls=%d, want boom/2", err, calls)
	}
}

func TestRetryDoesNotRetryCancelOrOpen(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, DefaultRetry, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("canceled ctx: err=%v calls=%d, want Canceled/0", err, calls)
	}

	calls = 0
	err = Retry(context.Background(), DefaultRetry, func() error { calls++; return ErrOpen })
	if !errors.Is(err, ErrOpen) || calls != 1 {
		t.Fatalf("ErrOpen: err=%v calls=%d, want ErrOpen/1", err, calls)
	}
}
