// Package fault is the failure-containment toolkit of the serving stack:
// named fault-injection points, a circuit breaker, and bounded
// retry-with-backoff.
//
// The injection half generalises wal.MemFS's OnOp hook from filesystem
// operations to the whole request lifecycle. Production code marks the places
// where the outside world could fail — an LLM call, a retrieval scan, a WAL
// append, a commit — with a named point:
//
//	if err := fault.Inject(ctx, fault.PointLLMGenerate); err != nil { ... }
//
// and the chaos suite arms faults against those names: extra latency, an
// injected error, a hang that blocks until the caller's context is canceled
// (or the fault is cleared), or a panic. With nothing armed, Inject is a
// single atomic load — the production fast path costs nothing measurable and
// cannot change behaviour, which is what keeps the determinism pins of the
// equivalence suites intact.
//
// All registry functions are safe for concurrent use. The registry is
// process-global on purpose: chaos tests arm faults around a fully assembled
// system (HTTP front door included) without threading a handle through every
// layer, and must Reset() when done.
package fault

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical injection-point names. Points are plain strings so packages can
// add their own (wal.FaultOps derives "<prefix>.<op>" names per filesystem
// operation); these constants name the ones wired into the engine.
const (
	// PointLLMGenerate guards answer generation (llm.Sim.GenerateAnswerCtx).
	PointLLMGenerate = "llm.generate"
	// PointLLMExtract guards per-query LLM extraction on the chunk-fallback
	// path (llm.Sim.ExtractEntitiesCtx / ExtractTriplesCtx).
	PointLLMExtract = "llm.extract"
	// PointEvidence fires at the head of every (entity, relation)
	// sub-question evaluation — the unit the query DAG schedules.
	PointEvidence = "query.evidence"
	// PointRetrievalScan fires at the head of every context-aware retrieval
	// scan (exact, sharded or ANN).
	PointRetrievalScan = "retrieval.scan"
	// PointCommit fires inside the group committer's critical section, before
	// any batch replays. Error faults fail the whole group (no batch is
	// acknowledged or published); hang faults here block until the fault is
	// cleared, since the commit path deliberately carries no context.
	PointCommit = "core.commit"
	// PointWALAppend fires before a commit group's WAL append. An error here
	// exercises the not-acknowledged path without latching the log itself.
	PointWALAppend = "wal.append"
	// PointServeExecute fires in the serving executor loop, once per formed
	// batch, before the engine runs it.
	PointServeExecute = "serve.execute"
	// PointClusterFeed fires in a replica's feed pump before each delivered
	// frame. Error faults drop the frame (the replica detects the gap and
	// fences); hang faults stall the pump until released, backing the feed
	// queue up behind it.
	PointClusterFeed = "cluster.feed"
	// PointClusterReplay fires before a replica replays a shipped record.
	// Error faults fence the replica (its state can no longer be trusted to
	// match the feed position), forcing a resync from the primary.
	PointClusterReplay = "cluster.replay"
	// PointClusterProbe fires inside a replica health probe — the call the
	// router uses to re-admit a drained replica.
	PointClusterProbe = "cluster.probe"
	// PointClusterQuery fires at the head of a replica's batch query entry
	// point, so chaos tests can hang or fail a single replica's read path
	// without touching the primary or its siblings.
	PointClusterQuery = "cluster.query"
)

// Kind selects a fault's behaviour.
type Kind int

const (
	// KindLatency delays the caller by Fault.Latency (cut short if its
	// context is canceled first), then succeeds.
	KindLatency Kind = iota
	// KindError fails the operation with Fault.Err (ErrInjected when unset).
	KindError
	// KindHang blocks until the caller's context is canceled or the fault is
	// disabled, then returns the context error (nil when released by
	// Disable/Reset).
	KindHang
	// KindPanic panics — the containment the executor's recover boundary and
	// the chaos grid exercise.
	KindPanic
)

// String names the kind for grids and error messages.
func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindError:
		return "error"
	case KindHang:
		return "hang"
	case KindPanic:
		return "panic"
	default:
		return "unknown"
	}
}

// ErrInjected is the default error of KindError faults.
var ErrInjected = errors.New("fault: injected error")

// Fault is one armed failure mode.
type Fault struct {
	Kind Kind
	// Latency is the injected delay of KindLatency.
	Latency time.Duration
	// Err overrides ErrInjected for KindError.
	Err error
	// MaxHits bounds how many times the fault fires (0 = unlimited). Once
	// spent, Inject passes through as if the point were unarmed.
	MaxHits int64
}

// entry is one armed point at runtime.
type entry struct {
	f Fault
	// remaining is the hit budget (-1 = unlimited).
	remaining atomic.Int64
	hits      atomic.Int64
	// release unblocks in-flight hangs when the fault is cleared.
	release chan struct{}
}

var (
	// armed counts active faults; Inject's fast path is one load of it.
	armed atomic.Int64

	mu    sync.Mutex
	table = map[string]*entry{}
)

// Enable arms f at the named point, replacing any fault already armed there.
func Enable(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if old := table[point]; old != nil {
		close(old.release)
		armed.Add(-1)
	}
	e := &entry{f: f, release: make(chan struct{})}
	if f.MaxHits > 0 {
		e.remaining.Store(f.MaxHits)
	} else {
		e.remaining.Store(-1)
	}
	table[point] = e
	armed.Add(1)
}

// Disable clears the named point, releasing any goroutine hung on it.
func Disable(point string) {
	mu.Lock()
	defer mu.Unlock()
	if e := table[point]; e != nil {
		close(e.release)
		delete(table, point)
		armed.Add(-1)
	}
}

// Reset clears every armed fault, releasing all hung goroutines. Chaos tests
// defer it so one scenario can never leak into the next.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for point, e := range table {
		close(e.release)
		delete(table, point)
	}
	armed.Store(0)
}

// Hits reports how many times the named point has fired since it was armed
// (0 when unarmed).
func Hits(point string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if e := table[point]; e != nil {
		return e.hits.Load()
	}
	return 0
}

// Armed lists the armed point names, sorted (diagnostics / test assertions).
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(table))
	for p := range table {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Inject fires the fault armed at point, if any. With nothing armed anywhere
// it is a single atomic load and returns nil — the production fast path. The
// context governs latency truncation and hang release; code with no context
// of its own passes context.Background() (hangs then release only on
// Disable/Reset).
func Inject(ctx context.Context, point string) error {
	if armed.Load() == 0 {
		return nil
	}
	return inject(ctx, point)
}

func inject(ctx context.Context, point string) error {
	mu.Lock()
	e := table[point]
	mu.Unlock()
	if e == nil {
		return nil
	}
	// Claim one hit from the budget.
	for {
		rem := e.remaining.Load()
		if rem == 0 {
			return nil // budget spent: pass through
		}
		if rem < 0 || e.remaining.CompareAndSwap(rem, rem-1) {
			break
		}
	}
	e.hits.Add(1)
	switch e.f.Kind {
	case KindLatency:
		t := time.NewTimer(e.f.Latency)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case <-e.release:
			return nil
		}
	case KindError:
		if e.f.Err != nil {
			return e.f.Err
		}
		return ErrInjected
	case KindHang:
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-e.release:
			return nil
		}
	case KindPanic:
		panic("fault: injected panic at " + point)
	}
	return nil
}
