package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes calls through, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fast-fails every call until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe call; its outcome decides
	// between re-closing and re-opening.
	BreakerHalfOpen
)

// String names the state for metrics and health reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// ErrOpen is returned by Breaker.Do without invoking fn while the breaker is
// open (or while another probe already holds the half-open slot).
var ErrOpen = errors.New("fault: circuit breaker open")

// DefaultBreakerFailures and DefaultBreakerCooldown are the trip threshold
// and open→half-open delay used when a Breaker is built with zero values.
const (
	DefaultBreakerFailures = 5
	DefaultBreakerCooldown = time.Second
)

// BreakerStats is one breaker's observable state, exported on /v1/metrics.
type BreakerStats struct {
	Name      string `json:"name"`
	State     string `json:"state"`
	Failures  int64  `json:"consecutive_failures"`
	Trips     int64  `json:"trips"`
	FastFails int64  `json:"fast_fails"`
	Successes int64  `json:"successes"`
}

// Breaker is a consecutive-failure circuit breaker. Closed, it counts
// consecutive failures and trips open at the threshold; open, it fast-fails
// with ErrOpen until the cooldown elapses; then a single half-open probe is
// admitted — success re-closes the breaker, failure re-opens it for another
// cooldown. Safe for concurrent use; fn runs outside the lock.
type Breaker struct {
	name      string
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for deterministic tests

	mu        sync.Mutex
	state     BreakerState
	failures  int64 // consecutive failures while closed
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
	trips     int64
	fastFails int64
	successes int64
}

// NewBreaker builds a breaker. Zero threshold or cooldown take the defaults;
// a nil clock uses time.Now.
func NewBreaker(name string, threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerFailures
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{name: name, threshold: threshold, cooldown: cooldown, now: now}
}

// Do runs fn under the breaker's admission policy and records its outcome.
func (b *Breaker) Do(fn func() error) error {
	if err := b.allow(); err != nil {
		return err
	}
	err := fn()
	b.record(err)
	return err
}

// allow admits or fast-fails a call, transitioning open→half-open when the
// cooldown has elapsed.
func (b *Breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.fastFails++
			return fmt.Errorf("%w: %s", ErrOpen, b.name)
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	case BreakerHalfOpen:
		if b.probing {
			b.fastFails++
			return fmt.Errorf("%w: %s (probe in flight)", ErrOpen, b.name)
		}
		b.probing = true
		return nil
	}
	return nil
}

// record applies a call's outcome to the state machine.
func (b *Breaker) record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// The caller gave up — that says nothing about the guarded stage's
		// health, so it is neither a failure nor a success. A canceled
		// half-open probe just frees the probe slot for a caller that will
		// wait for the verdict.
		if b.state == BreakerHalfOpen {
			b.probing = false
		}
		return
	}
	if err == nil {
		b.successes++
		b.failures = 0
		if b.state != BreakerClosed {
			b.state = BreakerClosed
			b.probing = false
		}
		return
	}
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= int64(b.threshold) {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
		}
	case BreakerHalfOpen:
		// The probe failed: back to open for another full cooldown.
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.trips++
		b.failures = int64(b.threshold)
	}
}

// State returns the current position (open flips to half-open lazily in
// allow, so a cooled-down open breaker still reads "open" until probed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats snapshots the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		Name:      b.name,
		State:     b.state.String(),
		Failures:  b.failures,
		Trips:     b.trips,
		FastFails: b.fastFails,
		Successes: b.successes,
	}
}
