package confidence

import (
	"fmt"
	"sync"
	"testing"
)

// TestHistoryStoreConcurrentUpdates hammers the mutex-guarded history store
// from many goroutines (run with -race) and checks the incremental
// estimation arithmetic is exact: Update is commutative, so the final
// Prh(D) must equal the closed form regardless of interleaving.
func TestHistoryStoreConcurrentUpdates(t *testing.T) {
	const goroutines = 16
	const iters = 50

	hs := NewHistoryStore()
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for gr := 0; gr < goroutines; gr++ {
		go func(gr int) {
			defer wg.Done()
			src := fmt.Sprintf("src-%d", gr%4)
			for i := 0; i < iters; i++ {
				hs.Update(src, 2, 1)
				hs.Prh(src)
				hs.Historical(src, []float64{0.8}, 3, 0.5)
				hs.Scans()
			}
		}(gr)
	}
	wg.Wait()

	// Each of the 4 sources received (goroutines/4)*iters updates of
	// (provided=2, accepted=1) on top of the H0=50, Prh0=0.5 prior:
	// Prh = (50*0.5 + n) / (50 + 2n).
	n := float64(goroutines / 4 * iters)
	want := (25 + n) / (50 + 2*n)
	for i := 0; i < 4; i++ {
		src := fmt.Sprintf("src-%d", i)
		if got := hs.Prh(src); got != want {
			t.Fatalf("Prh(%s) = %v, want %v (updates lost under contention)", src, got, want)
		}
	}
	if hs.Scans() == 0 {
		t.Fatal("validation scans not accounted")
	}
	hs.ResetScans()
	if hs.Scans() != 0 {
		t.Fatal("ResetScans failed")
	}
}

// TestHistoryStoreConcurrentReaders checks read paths stay in range while a
// writer churns the same source.
func TestHistoryStoreConcurrentReaders(t *testing.T) {
	hs := NewHistoryStore()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			hs.Update("feed", 3, 2)
		}
		close(done)
	}()
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if p := hs.Prh("feed"); p < 0 || p > 1 {
					t.Errorf("Prh out of range: %v", p)
					return
				}
				if a := hs.Historical("feed", []float64{0.9}, 2, 1); a < 0 || a > 1 {
					t.Errorf("Historical out of range: %v", a)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
}
