package confidence

import (
	"reflect"
	"testing"

	"multirag/internal/kg"
	"multirag/internal/linegraph"
)

// TestRunDeferredMatchesRunThenApply: with a single candidate there is no
// intra-call ordering, so RunDeferred + Apply must leave the result and the
// history store bit-identical to a plain Run.
func TestRunDeferredMatchesRunThenApply(t *testing.T) {
	_, sg := caseStudyGraph(t)
	node, _ := sg.Lookup(kg.CanonicalID("CA981"), "status")
	cfg := Config{Alpha: 0.5, Beta: 0.5, NodeThreshold: 0.7, GraphThreshold: 0.99} // force node-level

	immediate := newMCC(cfg)
	deferred := newMCC(cfg)
	for round := 0; round < 4; round++ {
		want := immediate.Run(sg, []*linegraph.HomologousNode{node}, Options{})
		got, delta := deferred.RunDeferred(sg, []*linegraph.HomologousNode{node}, Options{})
		deferred.History().Apply(delta)
		if !reflect.DeepEqual(got.SVs, want.SVs) || !reflect.DeepEqual(got.LVs, want.LVs) {
			t.Fatalf("round %d: deferred result diverges from immediate run", round)
		}
		for _, src := range []string{"airline-app", "airport-api", "weather-feed", "forum-user"} {
			if a, b := immediate.History().Prh(src), deferred.History().Prh(src); a != b {
				t.Fatalf("round %d: history diverges for %s: %v vs %v", round, src, a, b)
			}
		}
	}
}

// TestRunDeferredFreezesHistoryAcrossCandidates pins the deferred contract:
// every candidate in one RunDeferred call is scored against the call-time
// history, so splitting the candidates across separate deferred calls (the
// parallel-arm shape) and applying the deltas afterwards yields the same
// scores in any split.
func TestRunDeferredFreezesHistoryAcrossCandidates(t *testing.T) {
	g := kg.New()
	g.AddEntity("CA981", "Flight", "flights")
	g.AddEntity("MU588", "Flight", "flights")
	add := func(subj, pred, obj, src string, w float64) {
		t.Helper()
		if _, err := g.AddTriple(kg.Triple{
			Subject: kg.CanonicalID(subj), Predicate: pred, Object: obj,
			Source: src, Domain: "flights", Weight: w,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Both nodes share sources, so immediate-update ordering would couple
	// their scores; both conflict, so the node-level (history-reading) stage
	// runs for each.
	add("CA981", "status", "Delayed", "airline-app", 0.9)
	add("CA981", "status", "On time", "forum-user", 0.4)
	add("MU588", "status", "Boarding", "airline-app", 0.85)
	add("MU588", "status", "Cancelled", "forum-user", 0.45)
	sg := linegraph.Build(g)
	n1, _ := sg.Lookup(kg.CanonicalID("CA981"), "status")
	n2, _ := sg.Lookup(kg.CanonicalID("MU588"), "status")
	cfg := Config{Alpha: 0.5, Beta: 0.5, NodeThreshold: 0.7, GraphThreshold: 0.99}

	joint := newMCC(cfg)
	split := newMCC(cfg)
	wantRes, wantDelta := joint.RunDeferred(sg, []*linegraph.HomologousNode{n1, n2}, Options{})
	joint.History().Apply(wantDelta)

	r1, d1 := split.RunDeferred(sg, []*linegraph.HomologousNode{n1}, Options{})
	r2, d2 := split.RunDeferred(sg, []*linegraph.HomologousNode{n2}, Options{})
	split.History().Apply(d1)
	split.History().Apply(d2)

	got := append(append([]TrustedNode(nil), r1.SVs...), r2.SVs...)
	if !reflect.DeepEqual(got, wantRes.SVs) {
		t.Fatalf("split deferred runs diverge from joint run:\n got %+v\nwant %+v", got, wantRes.SVs)
	}
	for _, src := range []string{"airline-app", "forum-user"} {
		if a, b := joint.History().Prh(src), split.History().Prh(src); a != b {
			t.Fatalf("history diverges for %s: %v vs %v", src, a, b)
		}
	}
}

// TestHistoryDeltaApplyNil: nil and empty deltas are no-ops.
func TestHistoryDeltaApplyNil(t *testing.T) {
	hs := NewHistoryStore()
	before := hs.Prh("src")
	hs.Apply(nil)
	hs.Apply(&HistoryDelta{})
	if got := hs.Prh("src"); got != before {
		t.Fatalf("no-op apply changed history: %v vs %v", got, before)
	}
	if !(&HistoryDelta{}).Empty() || !(*HistoryDelta)(nil).Empty() {
		t.Fatal("empty deltas must report Empty")
	}
}
