package confidence

import (
	"math"
	"sync"
)

// HistoryStore tracks the per-source historical credibility used by
// Auth_hist(v) (Eq. 11): for each data source D it keeps H, the number of
// entities the source has provided across historical queries, and Prh(D),
// its running historical credibility. The store also counts the entities
// scanned during validation — the dominant cost of the α → 0 regime in
// Fig. 7 — so benchmarks can charge it to the virtual clock.
type HistoryStore struct {
	mu      sync.Mutex
	sources map[string]*sourceHistory
	// initH and initPr seed unseen sources; the paper initialises the
	// number of historical entities to 50.
	initH  int
	initPr float64
	// scans counts historical entities examined by Authority computations.
	scans int
}

type sourceHistory struct {
	h       int     // H: entities provided over all historical queries
	correct float64 // accumulated credibility mass
}

// NewHistoryStore returns a store seeded with the paper's defaults
// (H₀ = 50 historical entities, prior credibility 0.5).
func NewHistoryStore() *HistoryStore {
	return &HistoryStore{sources: map[string]*sourceHistory{}, initH: 50, initPr: 0.5}
}

func (hs *HistoryStore) get(source string) *sourceHistory {
	sh, ok := hs.sources[source]
	if !ok {
		sh = &sourceHistory{h: hs.initH, correct: float64(hs.initH) * hs.initPr}
		hs.sources[source] = sh
	}
	return sh
}

// Prh returns the historical credibility Prh(D) of a source.
func (hs *HistoryStore) Prh(source string) float64 {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	sh := hs.get(source)
	if sh.h == 0 {
		return hs.initPr
	}
	return sh.correct / float64(sh.h)
}

// Historical computes Auth_hist(v) (Eq. 11) for a node served by source,
// given the probability masses Pr(υp) of the source's current query-related
// answers and the total count of query-related data |Data(q, subSG′ᵢ)|:
//
//	Auth_hist = (H·Prh(D) + Σ Pr(υp)) / (H + |Data(q, subSG′ᵢ)|)
//
// effort ∈ [0,1] is the share of the historical record actually validated —
// the 1−α weighting of Eq. 9 determines how much historical evidence the
// retrieval needs; Fig. 7's query time falls as α → 1 precisely because the
// validation workload shrinks. The call charges effort·H scanned entities to
// the validation-cost counter.
func (hs *HistoryStore) Historical(source string, currentPr []float64, queryData int, effort float64) float64 {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	sh := hs.get(source)
	if effort < 0 {
		effort = 0
	}
	if effort > 1 {
		effort = 1
	}
	hs.scans += int(effort * float64(sh.h))
	var sum float64
	for _, p := range currentPr {
		sum += p
	}
	denom := float64(sh.h + queryData)
	if denom == 0 {
		return hs.initPr
	}
	v := (float64(sh.h)*hs.Prh0(sh) + sum) / denom
	return clamp01(v)
}

func (hs *HistoryStore) Prh0(sh *sourceHistory) float64 {
	if sh.h == 0 {
		return hs.initPr
	}
	return sh.correct / float64(sh.h)
}

// HistoryDelta is a deferred batch of incremental-estimation updates: the
// per-source acceptance credits one MCC evaluation would have applied
// immediately. Parallel query arms each accumulate their own delta against a
// frozen history view and the executor applies them in input order after the
// join, so the final history state — and every confidence score computed
// along the way — is independent of scheduling. Updates are commutative
// (pure counter increments), which is what makes the in-order replay exact.
type HistoryDelta struct {
	entries []histCredit
}

// histCredit is one source's outcome for one candidate subgraph.
type histCredit struct {
	source             string
	provided, accepted int
}

// Empty reports whether the delta carries no credits.
func (d *HistoryDelta) Empty() bool { return d == nil || len(d.entries) == 0 }

// Apply replays the recorded credits onto hs. A nil delta is a no-op.
func (hs *HistoryStore) Apply(d *HistoryDelta) {
	if d == nil {
		return
	}
	for _, c := range d.entries {
		hs.Update(c.source, c.provided, c.accepted)
	}
}

// Update performs the incremental estimation step after a query: the source
// provided `provided` entities of which `accepted` survived confidence
// filtering. Acceptance is treated as the online proxy for correctness.
func (hs *HistoryStore) Update(source string, provided, accepted int) {
	if provided <= 0 {
		return
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	sh := hs.get(source)
	sh.h += provided
	sh.correct += float64(accepted)
}

// Scans returns the total historical entities examined so far (virtual-cost
// accounting for Fig. 7) .
func (hs *HistoryStore) Scans() int {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	return hs.scans
}

// ResetScans clears the validation-cost counter.
func (hs *HistoryStore) ResetScans() {
	hs.mu.Lock()
	hs.scans = 0
	hs.mu.Unlock()
}

// Sigmoid implements Eq. (10)'s logistic squashing with steepness β applied
// to a centred score: Auth_LLM(v) = 1 / (1 + e^(−β·c)). The paper centres
// C_LLM(v) on the mean over all candidate nodes; callers pass c already
// centred.
func Sigmoid(beta, c float64) float64 {
	return 1 / (1 + math.Exp(-beta*c))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
