package confidence

import (
	"sort"

	"multirag/internal/kg"
	"multirag/internal/linegraph"
	"multirag/internal/llm"
)

// Config carries the hyper-parameters of §IV-A(c).
type Config struct {
	// Alpha balances LLM-assessed authority against historical authority in
	// Eq. (9). The paper's Fig. 7 peaks at 0.5.
	Alpha float64
	// Beta is the steepness of the Eq. (10) sigmoid; the paper sets 0.5.
	Beta float64
	// NodeThreshold is θ in Algorithm 1 (paper default 0.7). Note that
	// C(v) = Sₙ(v) + A(v) lives in [0, 2].
	NodeThreshold float64
	// GraphThreshold is the candidate-graph confidence cut-off (paper
	// default 0.5).
	GraphThreshold float64
	// FastPathNodes is how many top members a high-confidence subgraph
	// contributes directly ("for subgraphs with high confidence, only 1–2
	// nodes are required", §IV-C). 0 means the default of 2.
	FastPathNodes int
}

// DefaultConfig returns the paper's hyper-parameter settings.
func DefaultConfig() Config {
	return Config{Alpha: 0.5, Beta: 0.5, NodeThreshold: 0.7, GraphThreshold: 0.5, FastPathNodes: 2}
}

// Options toggles the ablation switches of Table III.
type Options struct {
	// DisableGraphLevel removes the coarse subgraph filter ("w/o Graph
	// Level"): no candidate subgraph is eliminated and every member is
	// node-scored.
	DisableGraphLevel bool
	// DisableNodeLevel removes the fine filter ("w/o Node Level"): members
	// of surviving subgraphs pass through unscored.
	DisableNodeLevel bool
}

// Disabled reports whether both levels are off ("w/o MCC").
func (o Options) Disabled() bool { return o.DisableGraphLevel && o.DisableNodeLevel }

// TrustedNode is one retrieval node that survived confidence filtering,
// with the weight it should carry in the LLM context.
type TrustedNode struct {
	Triple     *kg.Triple
	Confidence float64 // C(v) for node-scored members, C(G)-scaled otherwise
	// Verified marks nodes that actually passed confidence scoring (fast
	// path or node-level). Pass-through nodes from ablated configurations
	// are unverified and reach the LLM context as raw claims.
	Verified bool
}

// Assessment is the outcome of MCC for one candidate homologous subgraph.
type Assessment struct {
	Node            *linegraph.HomologousNode
	GraphConfidence float64
	// EliminatedByGraph marks subgraphs removed by the coarse stage.
	EliminatedByGraph bool
	// FastPath marks subgraphs that skipped node-level scoring.
	FastPath bool
	Trusted  []TrustedNode
	Rejected []*kg.Triple
	// NodeConfidence records C(v) per scored member triple ID.
	NodeConfidence map[string]float64
}

// Result aggregates MCC over all candidate subgraphs of one query: SVs is
// the credible node set, LVs the eliminated one (Algorithm 1's outputs).
type Result struct {
	Assessments []Assessment
	SVs         []TrustedNode
	LVs         []*kg.Triple
	// NodesScored counts node-level confidence computations (the expensive
	// fine-ranking stage) for cost accounting.
	NodesScored int
}

// MCC executes multi-level confidence computing. One MCC instance carries
// the per-deployment state: the expert model and the source history.
type MCC struct {
	cfg   Config
	model llm.Model
	hist  *HistoryStore
}

// New builds an MCC engine.
func New(cfg Config, model llm.Model, hist *HistoryStore) *MCC {
	if cfg.FastPathNodes <= 0 {
		cfg.FastPathNodes = 2
	}
	if hist == nil {
		hist = NewHistoryStore()
	}
	return &MCC{cfg: cfg, model: model, hist: hist}
}

// History exposes the underlying history store (for cost accounting and
// inspection).
func (m *MCC) History() *HistoryStore { return m.hist }

// Config returns the engine's configuration.
func (m *MCC) Config() Config { return m.cfg }

// Run implements Algorithm 1's MCC procedure over the candidate homologous
// subgraphs retrieved for one query.
//
// Stage 1 (coarse, graph level): C(G) is computed per candidate (Eq. 7).
// When at least one candidate clears the graph threshold, candidates below
// it are eliminated outright — the case-study behaviour where the
// forum-sourced subgraph is dropped. If no candidate clears the bar, all are
// retained and handed to the fine stage ("for subgraphs with low confidence,
// more nodes need to be extracted").
//
// Stage 2 (fine, node level): members of surviving high-confidence subgraphs
// take the fast path (top-FastPathNodes by weight, no scoring); members of
// low-confidence subgraphs are scored with C(v) = Sₙ(v) + A(v) and filtered
// by θ. After the query, per-source history is updated with the acceptance
// outcome (the incremental estimation of Eq. 11): Run applies each
// candidate's update as soon as the candidate is assessed, so within one
// call later candidates see earlier candidates' credits.
func (m *MCC) Run(sg *linegraph.SG, candidates []*linegraph.HomologousNode, opts Options) Result {
	res, _ := m.run(sg, candidates, opts, false)
	return res
}

// RunDeferred is Run for parallel executors: history reads all observe the
// state at call time and no update is applied — the acceptance credits are
// returned as a HistoryDelta for the caller to Apply once the parallel phase
// has joined. Because every concurrent RunDeferred sees the same frozen
// history, evaluation order (and therefore worker count) cannot change any
// confidence score; applying the deltas afterwards in input order makes the
// whole phase bit-identical to a sequential deferred run.
func (m *MCC) RunDeferred(sg *linegraph.SG, candidates []*linegraph.HomologousNode, opts Options) (Result, *HistoryDelta) {
	return m.run(sg, candidates, opts, true)
}

func (m *MCC) run(sg *linegraph.SG, candidates []*linegraph.HomologousNode, opts Options, deferred bool) (Result, *HistoryDelta) {
	var res Result
	var delta *HistoryDelta
	if deferred {
		delta = &HistoryDelta{}
	}
	if len(candidates) == 0 {
		return res, delta
	}
	// Stage 1: graph-level confidence. Member triples and their value sets
	// are resolved once per candidate — handle-indexed loads off the interned
	// graph core — and reused by every later stage.
	type cand struct {
		node    *linegraph.HomologousNode
		members []*kg.Triple
		vals    [][]string // vals[i] = {members[i].Object}
		gc      float64
	}
	cands := make([]cand, 0, len(candidates))
	anyAbove := false
	for _, n := range candidates {
		members := sg.MemberTriples(n)
		vals := make([][]string, len(members))
		for i, t := range members {
			vals[i] = []string{t.Object}
		}
		// C(G) is reported through the Assessment, never written back to the
		// node: homologous nodes are shared across serving snapshots and must
		// stay immutable under concurrent queries.
		gc := GraphConfidence(vals)
		if gc >= m.cfg.GraphThreshold {
			anyAbove = true
		}
		cands = append(cands, cand{n, members, vals, gc})
	}
	for _, c := range cands {
		a := Assessment{Node: c.node, GraphConfidence: c.gc, NodeConfidence: map[string]float64{}}
		members := c.members
		switch {
		case !opts.DisableGraphLevel && anyAbove && c.gc < m.cfg.GraphThreshold:
			// Coarse elimination: a more consistent alternative exists.
			a.EliminatedByGraph = true
			a.Rejected = members
		case !opts.DisableGraphLevel && c.gc >= m.cfg.GraphThreshold:
			// Fast path: consistent subgraph, 1–2 nodes from the dominant
			// value cluster suffice. This is pure graph-level work, so it
			// remains active under "w/o Node Level".
			a.FastPath = true
			top := topByWeight(majorityCluster(members), m.cfg.FastPathNodes)
			for _, t := range top {
				a.Trusted = append(a.Trusted, TrustedNode{Triple: t, Confidence: c.gc * t.Weight, Verified: true})
			}
			for _, t := range members {
				if !containsTriple(top, t) {
					a.Rejected = append(a.Rejected, t)
				}
			}
		case opts.DisableNodeLevel:
			// "w/o Node Level": surviving members pass through unscored and
			// unverified.
			for _, t := range members {
				a.Trusted = append(a.Trusted, TrustedNode{Triple: t, Confidence: t.Weight})
			}
		default:
			// Fine stage: score every member.
			m.scoreMembers(sg, members, c.vals, &a)
			res.NodesScored += len(members)
		}
		if deferred {
			delta.record(members, a.Trusted)
		} else {
			m.updateHistory(members, a.Trusted)
		}
		res.Assessments = append(res.Assessments, a)
		res.SVs = append(res.SVs, a.Trusted...)
		res.LVs = append(res.LVs, a.Rejected...)
	}
	return res, delta
}

// AssessIsolated handles isolated points (single-claim keys): they cannot be
// cross-checked, so their confidence is authority-only, damped by the lack
// of corroboration.
func (m *MCC) AssessIsolated(sg *linegraph.SG, t *kg.Triple, opts Options) TrustedNode {
	if opts.Disabled() || opts.DisableNodeLevel {
		return TrustedNode{Triple: t, Confidence: t.Weight}
	}
	auth := m.authority(sg, t, 0, 1)
	return TrustedNode{Triple: t, Confidence: auth * t.Weight, Verified: true}
}

// scoreMembers runs Algorithm 1's Confidence_Computing over each member:
// C(v) = Sₙ(v) + A(v), filtered by θ. vals carries each member's value set,
// resolved once by Run and shared across the peer comparisons below.
func (m *MCC) scoreMembers(sg *linegraph.SG, members []*kg.Triple, vals [][]string, a *Assessment) {
	if len(members) == 0 {
		// A candidate node can resolve to zero live members when the graph
		// was mutated destructively after the SG was built (perturbation
		// harness before RebuildSG); there is nothing to score.
		return
	}
	g := sg.Graph()
	maxDeg := g.MaxDegree()
	// Raw expert scores, centred before the sigmoid (Eq. 10). Skipped
	// entirely when α = 0 (pure historical authority, Fig. 7's left end).
	raw := make([]float64, len(members))
	var mean float64
	if m.cfg.Alpha > 0 {
		for i, t := range members {
			raw[i] = m.model.JudgeAuthority(llm.AuthorityContext{
				NodeID:        t.ID,
				Source:        t.Source,
				Degree:        g.Degree(t.Subject),
				MaxDegree:     maxDeg,
				LocalStrength: t.Weight,
				TypeWeight:    typeWeight(g, t),
				PathSupport:   g.TwoHopPathSupport(t),
			})
			mean += raw[i]
		}
		mean /= float64(len(members))
	}
	peerBuf := make([][]string, 0, len(members)-1)
	for i, t := range members {
		// Sₙ(v): consistency against peers (Eq. 8). The peer list reuses the
		// shared value slices instead of materialising O(m²) fresh ones.
		peers := append(peerBuf[:0], vals[:i]...)
		peers = append(peers, vals[i+1:]...)
		sn := NodeConsistency(vals[i], peers)
		// A(v) = α·Auth_LLM + (1−α)·Auth_hist (Eq. 9), skipping whichever
		// component has zero weight (this is what makes α sweep query time,
		// Fig. 7).
		var authLLM, authHist float64
		if m.cfg.Alpha > 0 {
			authLLM = Sigmoid(m.cfg.Beta, raw[i]-mean)
		}
		if m.cfg.Alpha < 1 {
			authHist = m.hist.Historical(t.Source, []float64{t.Weight}, len(members), 1-m.cfg.Alpha)
		}
		av := m.cfg.Alpha*authLLM + (1-m.cfg.Alpha)*authHist
		cv := sn + av
		a.NodeConfidence[t.ID] = cv
		if cv > m.cfg.NodeThreshold {
			a.Trusted = append(a.Trusted, TrustedNode{Triple: t, Confidence: cv, Verified: true})
		} else {
			a.Rejected = append(a.Rejected, t)
		}
	}
	// Robustness rule (§IV-C): a low-confidence subgraph must still yield an
	// answer candidate. If θ rejected every member, promote the nodes whose
	// extraction-weighted confidence C(v)·w sits within a small absolute gap
	// of the best — authority, source history and extraction strength break
	// ties that consistency alone cannot, while genuine multi-truth pairs
	// (near-equal scores) are all retained.
	const promoteGap = 0.02
	if len(a.Trusted) == 0 && len(members) > 0 {
		score := func(t *kg.Triple) float64 { return a.NodeConfidence[t.ID] * t.Weight }
		best := 0.0
		for _, t := range members {
			if sc := score(t); sc > best {
				best = sc
			}
		}
		for _, t := range members {
			if score(t) >= best-promoteGap {
				a.Trusted = append(a.Trusted, TrustedNode{Triple: t, Confidence: a.NodeConfidence[t.ID], Verified: true})
				a.Rejected = removeTriple(a.Rejected, t)
			}
		}
	}
}

func removeTriple(ts []*kg.Triple, t *kg.Triple) []*kg.Triple {
	for i, x := range ts {
		if x.ID == t.ID {
			return append(ts[:i], ts[i+1:]...)
		}
	}
	return ts
}

// authority computes A(v) for a lone triple (no peers to centre against).
func (m *MCC) authority(sg *linegraph.SG, t *kg.Triple, centre float64, queryData int) float64 {
	g := sg.Graph()
	var authLLM, authHist float64
	if m.cfg.Alpha > 0 {
		raw := m.model.JudgeAuthority(llm.AuthorityContext{
			NodeID:        t.ID,
			Source:        t.Source,
			Degree:        g.Degree(t.Subject),
			MaxDegree:     g.MaxDegree(),
			LocalStrength: t.Weight,
			TypeWeight:    typeWeight(g, t),
			PathSupport:   g.TwoHopPathSupport(t),
		})
		authLLM = Sigmoid(m.cfg.Beta, raw-centre)
	}
	if m.cfg.Alpha < 1 {
		authHist = m.hist.Historical(t.Source, []float64{t.Weight}, queryData, 1-m.cfg.Alpha)
	}
	return m.cfg.Alpha*authLLM + (1-m.cfg.Alpha)*authHist
}

// updateHistory credits each source with its acceptance outcome for this
// query (incremental estimation, Eq. 11 preamble).
func (m *MCC) updateHistory(members []*kg.Triple, trusted []TrustedNode) {
	for _, c := range historyCredits(members, trusted) {
		m.hist.Update(c.source, c.provided, c.accepted)
	}
}

// historyCredits folds one candidate's members and surviving trusted nodes
// into per-source acceptance counts, sorted by source for deterministic
// delta contents.
func historyCredits(members []*kg.Triple, trusted []TrustedNode) []histCredit {
	provided := map[string]int{}
	accepted := map[string]int{}
	for _, t := range members {
		provided[t.Source]++
	}
	for _, tn := range trusted {
		accepted[tn.Triple.Source]++
	}
	out := make([]histCredit, 0, len(provided))
	for src, p := range provided {
		out = append(out, histCredit{source: src, provided: p, accepted: accepted[src]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].source < out[j].source })
	return out
}

// record appends one candidate's acceptance credits to the delta.
func (d *HistoryDelta) record(members []*kg.Triple, trusted []TrustedNode) {
	d.entries = append(d.entries, historyCredits(members, trusted)...)
}

func typeWeight(g *kg.Graph, t *kg.Triple) float64 {
	if e, ok := g.Entity(t.Subject); ok && e.Type != "" && e.Type != "Entity" {
		return 0.8 // typed entities carry more schema evidence
	}
	return 0.5
}

// majorityCluster returns the members whose object value belongs to the
// largest agreement cluster (normalised string equality); ties break toward
// the lexicographically smaller value for determinism.
func majorityCluster(members []*kg.Triple) []*kg.Triple {
	groups := map[string][]*kg.Triple{}
	for _, t := range members {
		key := kg.CanonicalID(t.Object)
		groups[key] = append(groups[key], t)
	}
	bestKey := ""
	for key, g := range groups {
		if bestKey == "" || len(g) > len(groups[bestKey]) ||
			(len(g) == len(groups[bestKey]) && key < bestKey) {
			bestKey = key
		}
	}
	return groups[bestKey]
}

func topByWeight(members []*kg.Triple, k int) []*kg.Triple {
	sorted := make([]*kg.Triple, len(members))
	copy(sorted, members)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Weight != sorted[j].Weight {
			return sorted[i].Weight > sorted[j].Weight
		}
		return sorted[i].ID < sorted[j].ID
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

func containsTriple(ts []*kg.Triple, t *kg.Triple) bool {
	for _, x := range ts {
		if x.ID == t.ID {
			return true
		}
	}
	return false
}
