package confidence

import (
	"math"
	"testing"

	"multirag/internal/kg"
	"multirag/internal/linegraph"
	"multirag/internal/llm"
)

// caseStudyGraph reproduces the Table V scenario: a trustworthy consistent
// subgraph (airline/airport/weather all say Delayed) plus a conflicting
// low-quality claim from a user forum.
func caseStudyGraph(t *testing.T) (*kg.Graph, *linegraph.SG) {
	t.Helper()
	g := kg.New()
	g.AddEntity("CA981", "Flight", "flights")
	add := func(pred, obj, src string, w float64) {
		t.Helper()
		if _, err := g.AddTriple(kg.Triple{
			Subject: kg.CanonicalID("CA981"), Predicate: pred, Object: obj,
			Source: src, Domain: "flights", Weight: w,
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("status", "Delayed", "airline-app", 0.9)
	add("status", "Delayed", "airport-api", 0.88)
	add("status", "Delayed", "weather-feed", 0.8)
	add("status", "On time", "forum-user", 0.4)
	add("delay_reason", "Typhoon", "airline-app", 0.87)
	add("delay_reason", "Typhoon", "weather-feed", 0.85)
	return g, linegraph.Build(g)
}

func newMCC(cfg Config) *MCC {
	return New(cfg, llm.NewSim(llm.DefaultConfig()), NewHistoryStore())
}

func TestRunFiltersConflictingMinority(t *testing.T) {
	_, sg := caseStudyGraph(t)
	m := newMCC(DefaultConfig())
	node, _ := sg.Lookup(kg.CanonicalID("CA981"), "status")
	res := m.Run(sg, []*linegraph.HomologousNode{node}, Options{})
	if len(res.SVs) == 0 {
		t.Fatal("trusted set must not be empty")
	}
	for _, tn := range res.SVs {
		if tn.Triple.Object != "Delayed" {
			t.Fatalf("conflicting claim leaked into SVs: %+v", tn.Triple)
		}
	}
	found := false
	for _, r := range res.LVs {
		if r.Source == "forum-user" {
			found = true
		}
	}
	if !found {
		t.Fatal("forum claim must be rejected (Table V: filtered ForumUser)")
	}
}

func TestRunFastPathOnConsensus(t *testing.T) {
	g := kg.New()
	g.AddEntity("Heat", "Movie", "movies")
	for _, src := range []string{"a", "b", "c", "d"} {
		if _, err := g.AddTriple(kg.Triple{Subject: "heat", Predicate: "year", Object: "1995", Source: src, Weight: 0.9}); err != nil {
			t.Fatal(err)
		}
	}
	sg := linegraph.Build(g)
	m := newMCC(DefaultConfig())
	node, _ := sg.Lookup("heat", "year")
	res := m.Run(sg, []*linegraph.HomologousNode{node}, Options{})
	if len(res.Assessments) != 1 || !res.Assessments[0].FastPath {
		t.Fatalf("consensus subgraph must take the fast path: %+v", res.Assessments)
	}
	if len(res.SVs) != 2 {
		t.Fatalf("fast path must contribute FastPathNodes=2 members, got %d", len(res.SVs))
	}
	if res.NodesScored != 0 {
		t.Fatalf("fast path must not score nodes, scored %d", res.NodesScored)
	}
}

func TestRunGraphLevelEliminatesWeakSubgraph(t *testing.T) {
	g := kg.New()
	g.AddEntity("X", "", "d")
	add := func(pred, obj, src string) {
		if _, err := g.AddTriple(kg.Triple{Subject: "x", Predicate: pred, Object: obj, Source: src, Weight: 0.8}); err != nil {
			t.Fatal(err)
		}
	}
	// Consistent candidate.
	add("status", "ok", "s1")
	add("status", "ok", "s2")
	// Fully conflicted alternative candidate.
	add("user_claim", "alpha", "u1")
	add("user_claim", "beta", "u2")
	sg := linegraph.Build(g)
	m := newMCC(DefaultConfig())
	n1, _ := sg.Lookup("x", "status")
	n2, _ := sg.Lookup("x", "user_claim")
	res := m.Run(sg, []*linegraph.HomologousNode{n1, n2}, Options{})
	var elim *Assessment
	for i := range res.Assessments {
		if res.Assessments[i].Node == n2 {
			elim = &res.Assessments[i]
		}
	}
	if elim == nil || !elim.EliminatedByGraph {
		t.Fatalf("conflicted alternative must be eliminated at graph level: %+v", res.Assessments)
	}
}

func TestAblationMonotonicity(t *testing.T) {
	// The trusted sets must grow (get noisier) as levels are disabled:
	// full ⊆ w/o graph-level ⊆ w/o MCC in terms of conflicting content.
	_, sg := caseStudyGraph(t)
	node, _ := sg.Lookup(kg.CanonicalID("CA981"), "status")

	count := func(opts Options) (trusted, wrong int) {
		m := newMCC(DefaultConfig())
		res := m.Run(sg, []*linegraph.HomologousNode{node}, opts)
		for _, tn := range res.SVs {
			trusted++
			if tn.Triple.Object != "Delayed" {
				wrong++
			}
		}
		return
	}
	_, wrongFull := count(Options{})
	_, wrongNoMCC := count(Options{DisableGraphLevel: true, DisableNodeLevel: true})
	if wrongFull != 0 {
		t.Fatalf("full MCC leaked %d wrong claims", wrongFull)
	}
	if wrongNoMCC == 0 {
		t.Fatal("disabling MCC must leak the conflicting claim")
	}
}

func TestRunWithoutNodeLevelKeepsLocalConflicts(t *testing.T) {
	// A low-consensus subgraph (below the graph threshold) passes through
	// whole when node-level scoring is disabled: graph-level alone cannot
	// resolve local conflicts (§IV-C).
	g := kg.New()
	g.AddEntity("CA982", "Flight", "flights")
	add := func(obj, src string) {
		t.Helper()
		if _, err := g.AddTriple(kg.Triple{
			Subject: kg.CanonicalID("CA982"), Predicate: "status", Object: obj,
			Source: src, Weight: 0.8,
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("Delayed", "a")
	add("Delayed", "b")
	add("On time", "forum-user")
	add("On time", "forum-user-2")
	sg := linegraph.Build(g)
	node, _ := sg.Lookup(kg.CanonicalID("CA982"), "status")
	m := newMCC(DefaultConfig())
	res := m.Run(sg, []*linegraph.HomologousNode{node}, Options{DisableNodeLevel: true})
	leak := false
	for _, tn := range res.SVs {
		if tn.Triple.Source == "forum-user" {
			leak = true
		}
		if tn.Verified {
			t.Fatal("pass-through nodes must be unverified")
		}
	}
	if !leak {
		t.Fatal("w/o node level the local conflict must remain")
	}
	// The same subgraph under the full framework filters the minority.
	full := newMCC(DefaultConfig()).Run(sg, []*linegraph.HomologousNode{node}, Options{})
	for _, tn := range full.SVs {
		if tn.Triple.Source == "forum-user" && tn.Confidence >= full.SVs[0].Confidence {
			t.Fatal("full MCC must down-rank the conflicting claim")
		}
	}
}

func TestAssessIsolated(t *testing.T) {
	g := kg.New()
	g.AddEntity("Heat", "Movie", "movies")
	id, err := g.AddTriple(kg.Triple{Subject: "heat", Predicate: "runtime", Object: "170", Source: "imdb", Weight: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := g.Triple(id)
	sg := linegraph.Build(g)
	m := newMCC(DefaultConfig())
	tn := m.AssessIsolated(sg, tr, Options{})
	if tn.Confidence <= 0 || tn.Confidence > 1 {
		t.Fatalf("isolated confidence = %v", tn.Confidence)
	}
	raw := m.AssessIsolated(sg, tr, Options{DisableGraphLevel: true, DisableNodeLevel: true})
	if raw.Confidence != tr.Weight {
		t.Fatalf("w/o MCC isolated confidence must be the raw weight, got %v", raw.Confidence)
	}
}

func TestHistoryLearnsSourceQuality(t *testing.T) {
	_, sg := caseStudyGraph(t)
	node, _ := sg.Lookup(kg.CanonicalID("CA981"), "status")
	m := newMCC(Config{Alpha: 0.5, Beta: 0.5, NodeThreshold: 0.7, GraphThreshold: 0.99}) // force node-level
	before := m.History().Prh("forum-user")
	for i := 0; i < 5; i++ {
		m.Run(sg, []*linegraph.HomologousNode{node}, Options{})
	}
	after := m.History().Prh("forum-user")
	if after >= before {
		t.Fatalf("rejected source's historical credibility must fall: %v → %v", before, after)
	}
	goodBefore := 0.5
	goodAfter := m.History().Prh("airline-app")
	if goodAfter <= goodBefore {
		t.Fatalf("accepted source's credibility must rise: %v → %v", goodBefore, goodAfter)
	}
}

func TestAlphaExtremesSkipComponents(t *testing.T) {
	_, sg := caseStudyGraph(t)
	node, _ := sg.Lookup(kg.CanonicalID("CA981"), "status")

	// α = 1: pure LLM authority, no history scans.
	m1 := New(Config{Alpha: 1, Beta: 0.5, NodeThreshold: 0.7, GraphThreshold: 0.99}, llm.NewSim(llm.DefaultConfig()), NewHistoryStore())
	m1.Run(sg, []*linegraph.HomologousNode{node}, Options{})
	if m1.History().Scans() != 0 {
		t.Fatalf("α=1 must not scan history, scanned %d", m1.History().Scans())
	}

	// α = 0: pure history, no LLM authority calls.
	model := llm.NewSim(llm.DefaultConfig())
	m0 := New(Config{Alpha: 0, Beta: 0.5, NodeThreshold: 0.7, GraphThreshold: 0.99}, model, NewHistoryStore())
	model.ResetUsage()
	m0.Run(sg, []*linegraph.HomologousNode{node}, Options{})
	if model.Usage().Calls != 0 {
		t.Fatalf("α=0 must not call the LLM judge, made %d calls", model.Usage().Calls)
	}
	if m0.History().Scans() == 0 {
		t.Fatal("α=0 must scan history")
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0.5, 0); s != 0.5 {
		t.Fatalf("Sigmoid(β,0) = %v, want 0.5", s)
	}
	if !(Sigmoid(0.5, 2) > 0.5 && Sigmoid(0.5, -2) < 0.5) {
		t.Fatal("sigmoid must be monotone around 0")
	}
	if Sigmoid(2, 1) <= Sigmoid(0.5, 1) {
		t.Fatal("larger β must steepen the curve")
	}
}

func TestHistoricalFormula(t *testing.T) {
	hs := NewHistoryStore()
	// Fresh source: H = 50, Prh = 0.5. With one current answer of mass 0.9
	// and one query-related datum: (50·0.5 + 0.9) / (50 + 1).
	got := hs.Historical("src", []float64{0.9}, 1, 1)
	want := (50*0.5 + 0.9) / 51.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Auth_hist = %v, want %v (Eq. 11)", got, want)
	}
	if hs.Scans() != 50 {
		t.Fatalf("scans = %d, want 50", hs.Scans())
	}
	hs.ResetScans()
	if hs.Scans() != 0 {
		t.Fatal("ResetScans failed")
	}
}

func TestHistoryUpdate(t *testing.T) {
	hs := NewHistoryStore()
	hs.Update("good", 10, 10)
	hs.Update("bad", 10, 0)
	if !(hs.Prh("good") > 0.5 && hs.Prh("bad") < 0.5) {
		t.Fatalf("Prh good=%v bad=%v", hs.Prh("good"), hs.Prh("bad"))
	}
	hs.Update("noop", 0, 0) // must not panic or create garbage
}

func TestMajorityCluster(t *testing.T) {
	ts := []*kg.Triple{
		{ID: "1", Object: "Delayed"},
		{ID: "2", Object: "delayed"},
		{ID: "3", Object: "On time"},
	}
	got := majorityCluster(ts)
	if len(got) != 2 {
		t.Fatalf("majority cluster size = %d, want 2", len(got))
	}
}

// TestRunStaleNodeNoMembers pins the stale-SG edge: a candidate node whose
// member triples were all removed from the graph after the SG was built (the
// perturbation flow before RebuildSG) must score cleanly as an empty
// assessment instead of panicking, under every ablation combination.
func TestRunStaleNodeNoMembers(t *testing.T) {
	g, sg := caseStudyGraph(t)
	node, _ := sg.Lookup(kg.CanonicalID("CA981"), "status")
	for _, id := range append([]string{}, node.Members...) {
		if !g.RemoveTriple(id) {
			t.Fatalf("could not remove member %s", id)
		}
	}
	for _, opts := range []Options{
		{},
		{DisableGraphLevel: true},
		{DisableNodeLevel: true},
		{DisableGraphLevel: true, DisableNodeLevel: true},
	} {
		m := newMCC(DefaultConfig())
		res := m.Run(sg, []*linegraph.HomologousNode{node}, opts)
		if len(res.SVs) != 0 || len(res.LVs) != 0 {
			t.Fatalf("opts %+v: stale node produced evidence: %+v", opts, res)
		}
		if len(res.Assessments) != 1 {
			t.Fatalf("opts %+v: assessments = %d, want 1", opts, len(res.Assessments))
		}
	}
}
