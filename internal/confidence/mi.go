// Package confidence implements MultiRAG's multi-level confidence computing
// (§III-D): mutual-information-entropy similarity between homologous nodes
// (Eq. 4–6), graph-level confidence (Eq. 7), node-level consistency,
// authority and historical scores (Eq. 8–11), and the MCC algorithm
// (Algorithm 1) that filters untrustworthy subgraphs and nodes before their
// content reaches the LLM context.
package confidence

import (
	"math"

	"multirag/internal/textutil"
)

// Similarity computes S(vi, vj) — the normalised mutual-information-entropy
// similarity between two attribute-value sets (Eq. 4 and Eq. 5).
//
// Construction of the joint distribution p(x, y): the paper defines I(vi,vj)
// over the joint distribution of the two nodes' attribute-value tokens but
// leaves the estimator open. We use the maximal-overlap coupling, the joint
// with marginals p_i and p_j that concentrates as much mass as possible on
// the diagonal:
//
//	p(t, t)  += min(p_i(t), p_j(t))                      (shared content)
//	p(x, y)  += r_i(x)·r_j(y)/R  for the residual mass    (independent rest)
//
// where r_i = p_i − min(p_i, p_j) and R = Σ r_i = Σ r_j. This is a valid
// joint distribution; identical value sets give I = H (maximal dependence)
// and disjoint value sets give the independent product (I = 0), exactly the
// behaviour Eq. 4 is meant to capture.
//
// Normalisation: the paper states S ∈ [0,1] but writes S = I/(H_i+H_j),
// which caps at 1/2 for identical distributions. We use the standard NMI
// S = 2I/(H_i+H_j) so the stated codomain is exact (DESIGN.md §4.3).
func Similarity(valuesI, valuesJ []string) float64 {
	pi := valueDist(valuesI)
	pj := valueDist(valuesJ)
	if len(pi) == 0 || len(pj) == 0 {
		return 0
	}
	hi, hj := pi.Entropy(), pj.Entropy()
	if hi+hj == 0 {
		// Both are point masses: similarity is identity of the single token.
		if sameSupport(pi, pj) {
			return 1
		}
		return 0
	}
	i := MutualInformation(pi, pj)
	s := 2 * i / (hi + hj)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// MutualInformation computes I(vi, vj) (Eq. 4) under the maximal-overlap
// coupling described at Similarity. Both distributions must be normalised.
func MutualInformation(pi, pj textutil.Dist) float64 {
	// Diagonal mass.
	var overlap float64
	diag := map[string]float64{}
	for t, p := range pi {
		if q, ok := pj[t]; ok {
			m := math.Min(p, q)
			diag[t] = m
			overlap += m
		}
	}
	residual := 1 - overlap
	var info float64
	// Diagonal terms: p(t,t) log(p(t,t) / (p_i(t) p_j(t))).
	for t, m := range diag {
		if m > 0 {
			info += m * math.Log(m/(pi[t]*pj[t]))
		}
	}
	if residual <= 1e-12 {
		return info
	}
	// Off-diagonal terms: p(x,y) = r_i(x) r_j(y) / R.
	for x, px := range pi {
		rx := px - diag[x]
		if rx <= 0 {
			continue
		}
		for y, py := range pj {
			ry := py - diag[y]
			if ry <= 0 {
				continue
			}
			pxy := rx * ry / residual
			if pxy > 0 {
				info += pxy * math.Log(pxy/(px*py))
			}
		}
	}
	return info
}

// Entropy exposes H(V) (Eq. 6) for a value set.
func Entropy(values []string) float64 {
	return valueDist(values).Entropy()
}

// valueDist builds the token distribution of an attribute-value set.
func valueDist(values []string) textutil.Dist {
	var slices [][]string
	for _, v := range values {
		toks := textutil.Tokenize(v)
		if len(toks) > 0 {
			slices = append(slices, toks)
		}
	}
	return textutil.NewDist(slices...)
}

func sameSupport(a, b textutil.Dist) bool {
	if len(a) != len(b) {
		return false
	}
	for t := range a {
		if _, ok := b[t]; !ok {
			return false
		}
	}
	return true
}

// GraphConfidence computes C(G) (Eq. 7): the mean pairwise similarity over
// all ordered pairs of distinct nodes in a homologous line graph, given each
// node's attribute-value set. A graph with fewer than two nodes has, by
// convention, confidence 1 (nothing disagrees with anything).
func GraphConfidence(nodeValues [][]string) float64 {
	n := len(nodeValues)
	if n < 2 {
		return 1
	}
	var total float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			total += Similarity(nodeValues[i], nodeValues[j])
		}
	}
	return total / float64(n*n-n)
}

// NodeConsistency computes Sₙ(v) (Eq. 8): the mean similarity of v's value
// set to those of the other nodes carrying the same attribute. With no
// peers the score is 0 (no corroboration).
func NodeConsistency(values []string, peers [][]string) float64 {
	if len(peers) == 0 {
		return 0
	}
	var total float64
	for _, p := range peers {
		total += Similarity(values, p)
	}
	return total / float64(len(peers))
}
