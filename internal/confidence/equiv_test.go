package confidence

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"multirag/internal/kg"
	"multirag/internal/linegraph"
	"multirag/internal/llm"
)

// TestMCCEquivalentAcrossGraphRepresentations is the top-of-stack
// observation-equivalence property for the interned graph core: the same
// corpus reaches MCC through three different representations — the original
// graph with a from-scratch SG, a delta-maintained SG over a chain of
// copy-on-write clones, and the final clone itself — and Algorithm 1 must
// produce bit-identical Results (assessments, SVs, LVs, node scores) on all
// of them. MCC consumes every hot observable the core rewired (member
// resolution by handle, key postings, degrees, MaxDegree, two-hop path
// support), so equality here pins the whole consistency-check pipeline.
func TestMCCEquivalentAcrossGraphRepresentations(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))

			// Ingest the same batches into: flat (one graph, scratch build)
			// and chain (clone per batch + BuildDelta), the serving engine's
			// commit pattern.
			flat := kg.New()
			chain := kg.New()
			var chainSG *linegraph.SG
			for batch := 0; batch < 5; batch++ {
				next := chain.Clone()
				var newIDs []string
				for i := 0; i < 3+rng.Intn(10); i++ {
					subj := fmt.Sprintf("e%d", rng.Intn(6))
					pred := fmt.Sprintf("p%d", rng.Intn(3))
					obj := fmt.Sprintf("v%d", rng.Intn(3))
					if rng.Intn(4) == 0 {
						obj = fmt.Sprintf("e%d", rng.Intn(6))
					}
					src := fmt.Sprintf("s%d", rng.Intn(3))
					w := 0.25 * float64(1+rng.Intn(4))
					flat.AddEntity(subj, "T", "d")
					next.AddEntity(subj, "T", "d")
					if _, err := flat.AddTriple(kg.Triple{
						Subject: subj, Predicate: pred, Object: obj, Source: src, Weight: w,
					}); err != nil {
						t.Fatal(err)
					}
					id, err := next.AddTriple(kg.Triple{
						Subject: subj, Predicate: pred, Object: obj, Source: src, Weight: w,
					})
					if err != nil {
						t.Fatal(err)
					}
					newIDs = append(newIDs, id)
				}
				chainSG = linegraph.BuildDelta(chainSG, next, newIDs)
				chain = next
			}
			scratchSG := linegraph.Build(flat)

			run := func(sg *linegraph.SG) Result {
				// Fresh deterministic model + history per run: Run mutates
				// source history, so shared state would leak across runs.
				m := New(DefaultConfig(), llm.NewSim(llm.DefaultConfig()), NewHistoryStore())
				keys := make([]string, 0, sg.NumNodes())
				sg.ForEachNode(func(k string, _ *linegraph.HomologousNode) {
					keys = append(keys, k)
				})
				sort.Strings(keys)
				cands := make([]*linegraph.HomologousNode, len(keys))
				for i, k := range keys {
					cands[i], _ = sg.Node(k)
				}
				res := m.Run(sg, cands, Options{})
				// Isolated points go through the authority-only path.
				for _, id := range sg.IsolatedIDs() {
					tr, ok := sg.Graph().Triple(id)
					if !ok {
						t.Fatalf("isolated id %s unresolvable", id)
					}
					res.SVs = append(res.SVs, m.AssessIsolated(sg, tr, Options{}))
				}
				return res
			}

			want := run(scratchSG)
			got := run(chainSG)
			if !reflect.DeepEqual(stripPointers(got), stripPointers(want)) {
				t.Fatalf("MCC diverges between scratch and delta-chained SG:\n got  %+v\n want %+v", got, want)
			}
			// And over the final clone directly (same graph content reached
			// through shared COW pages rather than a single-owner build).
			cloneRes := run(linegraph.Build(chain))
			if !reflect.DeepEqual(stripPointers(cloneRes), stripPointers(want)) {
				t.Fatalf("MCC diverges between flat graph and COW clone chain:\n got  %+v\n want %+v", cloneRes, want)
			}
		})
	}
}

// comparableResult is Result with triple pointers flattened to values, so
// DeepEqual compares content rather than addresses.
type comparableResult struct {
	Assessments []comparableAssessment
	SVs         []comparableTrusted
	LVs         []kg.Triple
	NodesScored int
}

type comparableAssessment struct {
	Key               string
	GraphConfidence   float64
	EliminatedByGraph bool
	FastPath          bool
	Trusted           []comparableTrusted
	Rejected          []kg.Triple
	NodeConfidence    map[string]float64
}

type comparableTrusted struct {
	Triple     kg.Triple
	Confidence float64
	Verified   bool
}

func stripPointers(r Result) comparableResult {
	out := comparableResult{NodesScored: r.NodesScored}
	conv := func(tns []TrustedNode) []comparableTrusted {
		o := make([]comparableTrusted, len(tns))
		for i, tn := range tns {
			o[i] = comparableTrusted{Triple: *tn.Triple, Confidence: tn.Confidence, Verified: tn.Verified}
		}
		return o
	}
	deref := func(ts []*kg.Triple) []kg.Triple {
		o := make([]kg.Triple, len(ts))
		for i, t := range ts {
			o[i] = *t
		}
		return o
	}
	for _, a := range r.Assessments {
		out.Assessments = append(out.Assessments, comparableAssessment{
			Key:               a.Node.Key,
			GraphConfidence:   a.GraphConfidence,
			EliminatedByGraph: a.EliminatedByGraph,
			FastPath:          a.FastPath,
			Trusted:           conv(a.Trusted),
			Rejected:          deref(a.Rejected),
			NodeConfidence:    a.NodeConfidence,
		})
	}
	out.SVs = conv(r.SVs)
	out.LVs = deref(r.LVs)
	return out
}
