package confidence

import (
	"math"
	"testing"
	"testing/quick"

	"multirag/internal/textutil"
)

func TestSimilarityIdentical(t *testing.T) {
	s := Similarity([]string{"Michael Mann"}, []string{"michael mann"})
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("identical value sets: S = %v, want 1", s)
	}
}

func TestSimilarityDisjoint(t *testing.T) {
	s := Similarity([]string{"Michael Mann"}, []string{"Christopher Nolan"})
	if s > 1e-9 {
		t.Fatalf("disjoint value sets: S = %v, want 0", s)
	}
}

func TestSimilarityPartialBetween(t *testing.T) {
	s := Similarity([]string{"2024-10-01 14:30"}, []string{"2024-10-01 16:45"})
	if s <= 0 || s >= 1 {
		t.Fatalf("partial overlap must give S strictly between 0 and 1, got %v", s)
	}
}

func TestSimilarityMonotoneInOverlap(t *testing.T) {
	none := Similarity([]string{"a b c d"}, []string{"w x y z"})
	one := Similarity([]string{"a b c d"}, []string{"a x y z"})
	three := Similarity([]string{"a b c d"}, []string{"a b c z"})
	if !(none < one && one < three) {
		t.Fatalf("similarity not monotone in token overlap: %v %v %v", none, one, three)
	}
}

func TestSimilarityPointMasses(t *testing.T) {
	if s := Similarity([]string{"delayed"}, []string{"delayed"}); s != 1 {
		t.Fatalf("equal point masses: %v", s)
	}
	if s := Similarity([]string{"delayed"}, []string{"ontime"}); s != 0 {
		t.Fatalf("distinct point masses: %v", s)
	}
}

func TestSimilarityEmpty(t *testing.T) {
	if s := Similarity(nil, []string{"x"}); s != 0 {
		t.Fatalf("empty vs non-empty: %v", s)
	}
}

func TestSimilarityBoundsAndSymmetryProperty(t *testing.T) {
	f := func(a, b []string) bool {
		s1 := Similarity(a, b)
		s2 := Similarity(b, a)
		return s1 >= 0 && s1 <= 1 && math.Abs(s1-s2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMutualInformationNonNegativeProperty(t *testing.T) {
	f := func(a, b []string) bool {
		pa := textutil.NewDist(a)
		pb := textutil.NewDist(b)
		if len(pa) == 0 || len(pb) == 0 {
			return true
		}
		return MutualInformation(pa, pb) >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMutualInformationSelfEqualsEntropy(t *testing.T) {
	p := textutil.NewDist([]string{"a", "a", "b", "c"})
	i := MutualInformation(p, p)
	h := p.Entropy()
	if math.Abs(i-h) > 1e-9 {
		t.Fatalf("I(X;X) = %v, H(X) = %v; must be equal under maximal coupling", i, h)
	}
}

func TestEntropyMatchesDist(t *testing.T) {
	if h := Entropy([]string{"a b", "a c"}); math.Abs(h-textutil.NewDist([]string{"a", "b", "a", "c"}).Entropy()) > 1e-12 {
		t.Fatalf("Entropy = %v", h)
	}
}

func TestGraphConfidenceConsensusVsConflict(t *testing.T) {
	consensus := GraphConfidence([][]string{{"Delayed"}, {"Delayed"}, {"Delayed"}})
	conflicted := GraphConfidence([][]string{{"Delayed"}, {"On time"}, {"Cancelled"}})
	if consensus < 0.99 {
		t.Fatalf("full consensus C(G) = %v, want ≈1", consensus)
	}
	if conflicted > 0.2 {
		t.Fatalf("full conflict C(G) = %v, want ≈0", conflicted)
	}
	mixed := GraphConfidence([][]string{{"Delayed"}, {"Delayed"}, {"On time"}})
	if !(conflicted < mixed && mixed < consensus) {
		t.Fatalf("C(G) not ordered by agreement: %v %v %v", conflicted, mixed, consensus)
	}
}

func TestGraphConfidenceSmallGraphs(t *testing.T) {
	if GraphConfidence(nil) != 1 || GraphConfidence([][]string{{"x"}}) != 1 {
		t.Fatal("graphs with <2 nodes have confidence 1 by convention")
	}
}

func TestGraphConfidenceBoundsProperty(t *testing.T) {
	f := func(vals []string) bool {
		var sets [][]string
		for _, v := range vals {
			sets = append(sets, []string{v})
		}
		c := GraphConfidence(sets)
		return c >= 0 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeConsistency(t *testing.T) {
	peers := [][]string{{"Delayed"}, {"Delayed"}, {"On time"}}
	agree := NodeConsistency([]string{"Delayed"}, peers)
	dissent := NodeConsistency([]string{"Cancelled"}, peers)
	if agree <= dissent {
		t.Fatalf("agreeing node must be more consistent: %v vs %v", agree, dissent)
	}
	if NodeConsistency([]string{"x"}, nil) != 0 {
		t.Fatal("no peers ⇒ consistency 0")
	}
}
