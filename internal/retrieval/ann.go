package retrieval

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"multirag/internal/par"
)

// DefaultNProbe is the number of coarse-quantizer cells an ANN query probes
// when Options.NProbe is unset.
const DefaultNProbe = 8

const (
	// annMinCorpus is the corpus size below which ANN quietly serves the
	// exact flat scan: probing overhead dominates and tiny corpora (the CLI
	// demo, unit fixtures) should stay exact.
	annMinCorpus = 256
	// annTrainCap bounds how many of the first vectors the coarse quantizer
	// trains on; assignment still covers the whole corpus.
	annTrainCap = 16384
	// annKMeansIters is the fixed Lloyd iteration budget. The quantizer only
	// needs cells good enough for high-recall probing, not convergence.
	annKMeansIters = 6
	// annRetrainFactor triggers centroid retraining once the corpus outgrows
	// the size it was trained at by this factor; smaller growth only assigns
	// the appended tail to the existing cells (O(delta), the IsolatedIDs /
	// BuildDelta discipline).
	annRetrainFactor = 2
	// annSeed seeds the deterministic centroid initialisation.
	annSeed = 42
)

// nlistFor picks the coarse-quantizer cell count for a corpus of n vectors:
// the classic sqrt(n) IVF sizing, clamped to something sane.
func nlistFor(n int) int {
	nl := int(math.Sqrt(float64(n)))
	if nl < 1 {
		nl = 1
	}
	if nl > 4096 {
		nl = 4096
	}
	if nl > n {
		nl = n
	}
	return nl
}

// ivfState is the lazily (re)built per-snapshot IVF structure: the k-means
// centroids, one inverted list of chunk ordinals per centroid, and (in
// quantized mode) the int8 mirror of the arena used by the coarse pass.
// covered is the number of arena vectors the lists/mirror account for; a
// published snapshot's index never grows, so covered == Len() means the
// structure is complete and immutable, which is what the lock-free fast path
// in ensureBuilt checks.
type ivfState struct {
	mu      sync.Mutex
	covered atomic.Int64

	nlist     int
	centroids []float32 // nlist rows of dim, unit-normalised
	trainedAt int       // corpus size when the centroids were trained
	lists     [][]int32 // per-centroid chunk ordinals, ascending

	// int8 mirror (quantized mode only): one row of dim per vector plus the
	// per-vector dequantisation scale. Centroid-independent, so it survives
	// retraining and extends O(delta) per generation like the lists.
	q8     []int8
	scales []float32
}

// ANN is the approximate retrieval tier: an IVF coarse quantizer over the
// flat vector arena feeding the exact topK heap as a re-ranker. A query
// scores the query vector against every centroid (4-way unrolled float32
// kernel), probes the nprobe nearest cells in parallel, and every surviving
// candidate is scored with the exact float64 Cosine — so returned scores are
// always exact; the approximation is only in which candidates are considered.
// Optionally the coarse pass inside each probed cell runs over an
// int8-quantized mirror of the arena first, exact-re-ranking only the best
// coarse survivors.
//
// The IVF structure is rebuilt lazily per snapshot generation, the
// IsolatedIDs pattern: CloneForAppend hands the clone clipped copies of the
// inverted lists, and the first search against the published clone assigns
// just the appended tail to the existing cells (full retraining only once
// the corpus outgrows its training size by annRetrainFactor).
type ANN struct {
	*Index
	nprobe   int
	quantize bool
	workers  int
	ivf      ivfState
}

// NewANN builds an empty ANN store from opts. Shards and Postings are
// ignored: the IVF tier replaces both scan layouts (DESIGN.md §3).
func NewANN(opts Options) *ANN {
	nprobe := opts.NProbe
	if nprobe <= 0 {
		nprobe = DefaultNProbe
	}
	return &ANN{
		Index:    NewIndex(opts.Dim),
		nprobe:   nprobe,
		quantize: opts.ANNQuantize,
		workers:  opts.Workers,
	}
}

// CloneForAppend clips the underlying flat index and hands the clone
// copy-on-write views of the IVF state, so the clone's first post-publish
// search extends rather than rebuilds (appends to a clipped list reallocate
// privately, never into the receiver's arrays).
func (a *ANN) CloneForAppend() Store {
	clone := &ANN{
		Index:    a.Index.CloneForAppend().(*Index),
		nprobe:   a.nprobe,
		quantize: a.quantize,
		workers:  a.workers,
	}
	a.ivf.mu.Lock()
	clone.ivf.nlist = a.ivf.nlist
	clone.ivf.centroids = a.ivf.centroids
	clone.ivf.trainedAt = a.ivf.trainedAt
	if a.ivf.lists != nil {
		clone.ivf.lists = make([][]int32, len(a.ivf.lists))
		for i, l := range a.ivf.lists {
			clone.ivf.lists[i] = l[:len(l):len(l)]
		}
	}
	clone.ivf.q8 = a.ivf.q8[:len(a.ivf.q8):len(a.ivf.q8)]
	clone.ivf.scales = a.ivf.scales[:len(a.ivf.scales):len(a.ivf.scales)]
	clone.ivf.covered.Store(a.ivf.covered.Load())
	a.ivf.mu.Unlock()
	return clone
}

// Search returns the approximate top-k for the query (exact scores, possibly
// missing candidates — see the type comment).
func (a *ANN) Search(query string, k int) []Hit {
	return a.SearchFiltered(query, k, nil)
}

// SearchFiltered is Search restricted to chunks whose source passes keep.
func (a *ANN) SearchFiltered(query string, k int, keep func(source string) bool) []Hit {
	if k <= 0 || a.Len() == 0 {
		return nil
	}
	return a.SearchVector(Embed(query, a.Dim()), k, keep)
}

// SearchVector probes the nprobe nearest cells and exact-re-ranks the
// survivors. Corpora below annMinCorpus are served by the exact flat scan.
func (a *ANN) SearchVector(qv Vector, k int, keep func(source string) bool) []Hit {
	n := a.Len()
	if k <= 0 || n == 0 {
		return nil
	}
	if n < annMinCorpus {
		return a.Index.SearchVector(qv, k, keep)
	}
	a.ensureBuilt(n)

	probes := a.probe(qv)
	var q8 []int8
	var qscale float32
	if a.quantize {
		q8 = make([]int8, a.dim)
		qscale = quantize8(qv, q8)
	}
	perList := make([][]Hit, len(probes))
	par.ForEach(a.workers, len(probes), func(i int) {
		perList[i] = a.scanList(probes[i], qv, q8, qscale, k, keep)
	})
	merged := newTopK(k)
	for _, hits := range perList {
		for i := range hits {
			merged.consider(hits[i].Chunk, hits[i].Score)
		}
	}
	return merged.sorted()
}

// probe returns the nprobe cells nearest the query (by dot product against
// the unit centroids), in deterministic (score desc, cell asc) order.
func (a *ANN) probe(qv Vector) []int32 {
	nlist := a.ivf.nlist
	nprobe := a.nprobe
	if nprobe > nlist {
		nprobe = nlist
	}
	type cand struct {
		score float32
		cell  int32
	}
	cands := make([]cand, nlist)
	for c := 0; c < nlist; c++ {
		cands[c] = cand{dot32(qv, a.ivf.centroids[c*a.dim:(c+1)*a.dim]), int32(c)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].cell < cands[j].cell
	})
	out := make([]int32, nprobe)
	for i := range out {
		out[i] = cands[i].cell
	}
	return out
}

// scanList exact-scores one probed cell's candidates into a bounded top-k.
// In quantized mode an int8 coarse pass first narrows the cell to the best
// max(4k, 32) coarse scorers, and only those are exact-re-ranked.
func (a *ANN) scanList(cell int32, qv Vector, q8 []int8, qscale float32, k int, keep func(string) bool) []Hit {
	list := a.ivf.lists[cell]
	t := newTopK(k)
	if q8 == nil {
		for _, ord := range list {
			if keep != nil && !keep(a.chunks[ord].Source) {
				continue
			}
			t.consider(a.chunks[ord], Cosine(qv, a.arena.at(int(ord))))
		}
		return t.sorted()
	}
	r := 4 * k
	if r < 32 {
		r = 32
	}
	sel := newOrdSel(r)
	dim := a.dim
	for _, ord := range list {
		if keep != nil && !keep(a.chunks[ord].Source) {
			continue
		}
		coarse := float32(dot8(q8, a.ivf.q8[int(ord)*dim:(int(ord)+1)*dim])) * qscale * a.ivf.scales[ord]
		sel.push(coarse, ord)
	}
	for _, ord := range sel.ords[:sel.n] {
		t.consider(a.chunks[ord], Cosine(qv, a.arena.at(int(ord))))
	}
	return t.sorted()
}

// ensureBuilt brings the IVF structure up to date with the (frozen) corpus of
// this snapshot. Fast path: one atomic load — covered never regresses and a
// published index never grows, so covered == n proves the structure complete
// and the atomic store at the end of the slow path orders its writes before
// any fast-path reader.
func (a *ANN) ensureBuilt(n int) {
	if int(a.ivf.covered.Load()) == n {
		return
	}
	a.ivf.mu.Lock()
	defer a.ivf.mu.Unlock()
	if int(a.ivf.covered.Load()) == n {
		return
	}
	st := &a.ivf
	from := int(a.ivf.covered.Load())
	if st.centroids == nil || n > annRetrainFactor*st.trainedAt {
		a.train(n)
		st.lists = make([][]int32, st.nlist)
		from = 0
	}
	a.assign(from, n)
	if a.quantize {
		a.extendQuantized(from, n)
	}
	st.covered.Store(int64(n))
}

// train runs seeded k-means over the first min(n, annTrainCap) arena vectors:
// deterministic sampled init, a fixed Lloyd budget, spherical centroids
// (means renormalised to unit length, matching the unit-vector corpus).
// Assignment fans out on the worker pool; the mean accumulation is serial in
// point order, so training is deterministic for a fixed corpus prefix.
func (a *ANN) train(n int) {
	st := &a.ivf
	trainN := n
	if trainN > annTrainCap {
		trainN = annTrainCap
	}
	nlist := nlistFor(n)
	dim := a.dim

	rng := rand.New(rand.NewSource(annSeed))
	cents := make([]float32, nlist*dim)
	for c, idx := range rng.Perm(trainN)[:nlist] {
		copy(cents[c*dim:(c+1)*dim], a.arena.at(idx))
	}
	st.centroids = cents
	st.nlist = nlist
	st.trainedAt = n

	assign := make([]int32, trainN)
	sums := make([]float32, nlist*dim)
	counts := make([]int32, nlist)
	for iter := 0; iter < annKMeansIters; iter++ {
		par.ForEach(a.workers, trainN, func(i int) {
			assign[i] = a.nearestCell(a.arena.at(i))
		})
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < trainN; i++ {
			row := sums[int(assign[i])*dim : (int(assign[i])+1)*dim]
			v := a.arena.at(i)
			for d := range row {
				row[d] += v[d]
			}
			counts[assign[i]]++
		}
		for c := 0; c < nlist; c++ {
			if counts[c] == 0 {
				continue // empty cell keeps its previous centroid
			}
			row := sums[c*dim : (c+1)*dim]
			var norm float32
			for _, x := range row {
				norm += x * x
			}
			dst := cents[c*dim : (c+1)*dim]
			if norm == 0 {
				copy(dst, row)
				continue
			}
			inv := float32(1 / math.Sqrt(float64(norm)))
			for d, x := range row {
				dst[d] = x * inv
			}
		}
	}
}

// nearestCell returns the centroid with the highest dot product against v,
// lowest cell winning ties (strict improvement only).
func (a *ANN) nearestCell(v Vector) int32 {
	st := &a.ivf
	best := int32(0)
	bestScore := float32(math.Inf(-1))
	for c := 0; c < st.nlist; c++ {
		if s := dot32(v, st.centroids[c*a.dim:(c+1)*a.dim]); s > bestScore {
			bestScore, best = s, int32(c)
		}
	}
	return best
}

// assign routes arena vectors [from, n) to their nearest cell and appends
// them to the inverted lists in ordinal order (parallel scoring, serial
// appends — deterministic and list-sorted).
func (a *ANN) assign(from, n int) {
	if from >= n {
		return
	}
	cells := make([]int32, n-from)
	par.ForEach(a.workers, n-from, func(i int) {
		cells[i] = a.nearestCell(a.arena.at(from + i))
	})
	for i, c := range cells {
		a.ivf.lists[c] = append(a.ivf.lists[c], int32(from+i))
	}
}

// extendQuantized grows the int8 mirror to cover arena vectors [from, n).
func (a *ANN) extendQuantized(from, n int) {
	st := &a.ivf
	dim := a.dim
	if len(st.q8) > from*dim {
		// Retraining reset from to 0 but the mirror is centroid-independent;
		// only the uncovered tail needs quantizing.
		from = len(st.q8) / dim
	}
	if from >= n {
		return
	}
	q8 := st.q8
	need := n * dim
	if cap(q8) < need {
		grown := make([]int8, len(q8), need)
		copy(grown, q8)
		q8 = grown
	}
	q8 = q8[:need]
	scales := append(st.scales, make([]float32, n-from)...)
	par.ForEach(a.workers, n-from, func(i int) {
		ord := from + i
		scales[ord] = quantize8(a.arena.at(ord), q8[ord*dim:(ord+1)*dim])
	})
	st.q8, st.scales = q8, scales
}

// IVFStats reports the built coarse-quantizer shape (cells, probes per query,
// vectors covered) for the benchmark harness; zero cells means no ANN search
// has run against this snapshot yet.
func (a *ANN) IVFStats() (nlist, nprobe, covered int) {
	a.ivf.mu.Lock()
	defer a.ivf.mu.Unlock()
	return a.ivf.nlist, a.nprobe, int(a.ivf.covered.Load())
}

// RecallAtK is the harness metric for ANN configurations: the fraction of
// the exact top-k (want) that the approximate result (got) recovered,
// matched by chunk ID. An empty exact result counts as perfect recall.
func RecallAtK(got, want []Hit) float64 {
	if len(want) == 0 {
		return 1
	}
	ids := make(map[string]bool, len(got))
	for _, h := range got {
		ids[h.Chunk.ID] = true
	}
	n := 0
	for _, h := range want {
		if ids[h.Chunk.ID] {
			n++
		}
	}
	return float64(n) / float64(len(want))
}

// ScoreMAE is the companion error metric: mean absolute difference between
// the approximate and exact score at each rank (per-hit scores are exact
// under the re-rank contract, so a non-zero MAE measures pure ranking drift
// — stronger candidates the probe missed). Ranks beyond the shorter list are
// charged the exact score at that rank, so returning too few hits is an
// error, not a discount.
func ScoreMAE(got, want []Hit) float64 {
	if len(want) == 0 {
		return 0
	}
	var sum float64
	for i := range want {
		if i < len(got) {
			sum += math.Abs(got[i].Score - want[i].Score)
		} else {
			sum += math.Abs(want[i].Score)
		}
	}
	return sum / float64(len(want))
}

// ordSel is the bounded coarse-pass selector of the quantized path: it keeps
// the r best (score, ordinal) pairs in a min-heap whose root is the weakest
// kept pair (lowest coarse score; among equal scores, highest ordinal — so
// the kept set is deterministic for any scan order over distinct ordinals).
type ordSel struct {
	r      int
	n      int
	scores []float32
	ords   []int32
}

func newOrdSel(r int) *ordSel {
	return &ordSel{r: r, scores: make([]float32, 0, r), ords: make([]int32, 0, r)}
}

// weakerPair reports whether (sa, oa) is evicted before (sb, ob).
func weakerPair(sa float32, oa int32, sb float32, ob int32) bool {
	if sa != sb {
		return sa < sb
	}
	return oa > ob
}

func (s *ordSel) push(score float32, ord int32) {
	if s.n < s.r {
		s.scores = append(s.scores, score)
		s.ords = append(s.ords, ord)
		s.n++
		i := s.n - 1
		for i > 0 {
			p := (i - 1) / 2
			if !weakerPair(s.scores[i], s.ords[i], s.scores[p], s.ords[p]) {
				break
			}
			s.scores[i], s.scores[p] = s.scores[p], s.scores[i]
			s.ords[i], s.ords[p] = s.ords[p], s.ords[i]
			i = p
		}
		return
	}
	if weakerPair(score, ord, s.scores[0], s.ords[0]) {
		return
	}
	s.scores[0], s.ords[0] = score, ord
	i := 0
	for {
		least := i
		if l := 2*i + 1; l < s.n && weakerPair(s.scores[l], s.ords[l], s.scores[least], s.ords[least]) {
			least = l
		}
		if r := 2*i + 2; r < s.n && weakerPair(s.scores[r], s.ords[r], s.scores[least], s.ords[least]) {
			least = r
		}
		if least == i {
			return
		}
		s.scores[i], s.scores[least] = s.scores[least], s.scores[i]
		s.ords[i], s.ords[least] = s.ords[least], s.ords[i]
		i = least
	}
}
