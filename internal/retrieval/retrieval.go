// Package retrieval provides the dense-retrieval substrate used by the
// multi-hop QA experiments and by MKLGP's multi-document filtering step:
// token-budgeted chunking, deterministic feature-hashed embeddings, and a
// layered exact cosine top-k subsystem (flat or sharded scan, optional
// inverted-postings pruning) behind the Searcher interface. The embedding is
// a stand-in for the paper's neural retriever: it preserves the property
// that lexically related text scores high, which is what the benchmark
// corpora exercise.
package retrieval

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"

	"multirag/internal/textutil"
)

// Chunk is one retrievable text unit with provenance.
type Chunk struct {
	ID     string
	DocID  string
	Source string
	Text   string
}

// ChunkText splits text into chunks of at most maxTokens tokens, breaking at
// sentence boundaries where possible. maxTokens <= 0 selects the default of
// 64.
func ChunkText(docID, source, text string, maxTokens int) []Chunk {
	if maxTokens <= 0 {
		maxTokens = 64
	}
	sentences := splitSentences(text)
	var chunks []Chunk
	var buf []string
	used := 0
	flush := func() {
		if len(buf) == 0 {
			return
		}
		chunks = append(chunks, Chunk{
			ID:     chunkID(docID, len(chunks)),
			DocID:  docID,
			Source: source,
			Text:   strings.Join(buf, ". ") + ".",
		})
		buf = nil
		used = 0
	}
	for _, s := range sentences {
		n := len(textutil.Tokenize(s))
		if used+n > maxTokens && used > 0 {
			flush()
		}
		buf = append(buf, s)
		used += n
	}
	flush()
	return chunks
}

func chunkID(docID string, n int) string {
	return docID + "#c" + strconv.Itoa(n)
}

func splitSentences(text string) []string {
	var out []string
	for _, part := range strings.FieldsFunc(text, func(r rune) bool { return r == '.' || r == '\n' }) {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Vector is a dense embedding.
type Vector []float32

// DefaultDim is the embedding width used across the repository.
const DefaultDim = 256

// embedCalls counts Embed invocations process-wide. The per-query evaluation
// cache in internal/core asserts against it that repeated sub-questions do
// not re-embed.
var embedCalls atomic.Uint64

// EmbedCalls returns the number of Embed invocations since process start.
// It exists for cache-efficiency assertions in tests and benchmarks.
func EmbedCalls() uint64 { return embedCalls.Load() }

// Embed maps text to a deterministic L2-normalised feature-hashed vector:
// unigrams and bigrams of the content tokens are hashed into dim buckets
// with a sign hash (the classic hashing trick), giving stable lexical
// similarity under cosine.
func Embed(text string, dim int) Vector {
	embedCalls.Add(1)
	if dim <= 0 {
		dim = DefaultDim
	}
	v := make(Vector, dim)
	toks := textutil.TokenizeContent(text)
	feats := make([]string, 0, len(toks)*2)
	feats = append(feats, toks...)
	feats = append(feats, textutil.NGrams(toks, 2)...)
	for _, f := range feats {
		h := textutil.Hash64("emb|" + f)
		idx := int(h % uint64(dim))
		sign := float32(1)
		if (h>>32)&1 == 1 {
			sign = -1
		}
		v[idx] += sign
	}
	norm := float32(0)
	for _, x := range v {
		norm += x * x
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(float64(norm)))
		for i := range v {
			v[i] *= inv
		}
	}
	return v
}

// Cosine returns the cosine similarity of two equally sized vectors
// (already-normalised vectors make this the dot product).
func Cosine(a, b Vector) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var dot float64
	for i := 0; i < n; i++ {
		dot += float64(a[i]) * float64(b[i])
	}
	return dot
}

// Hit is one retrieval result.
type Hit struct {
	Chunk Chunk
	Score float64
}

// Index is the flat exact cosine top-k index over chunks: one contiguous
// scan, optionally pruned by an inverted-postings pre-filter. It is both the
// single-shard Store and the building block of the Sharded and ANN indexes.
// Vectors live in a flat arena (one contiguous []float32, stride = dim), so
// a scan walks memory linearly and the embedding width is fixed at
// construction — dim-mismatched appends are rejected up front.
type Index struct {
	dim    int
	chunks []Chunk
	arena  *arena
	// post, when non-nil, prunes scans to lexically plausible candidates
	// with an exact-scan fallback (see postings.go).
	post *postings
}

// NewIndex returns an empty flat index with the given embedding width
// (<=0 selects DefaultDim) and no postings pre-filter; use New to configure
// the layered variants.
func NewIndex(dim int) *Index {
	if dim <= 0 {
		dim = DefaultDim
	}
	return &Index{dim: dim, arena: newArena(dim)}
}

// Add inserts a chunk, embedding it inline.
func (ix *Index) Add(c Chunk) {
	ix.AddEmbedded(c, Embed(c.Text, ix.dim))
}

// AddEmbedded inserts a chunk with a precomputed embedding. The concurrent
// ingestion engine embeds chunks on worker goroutines and batch-appends them
// here under the write lock, keeping the expensive hashing off the serial
// commit path. The vector's width must match the index's (the arena fixes
// the stride at construction); a mismatch panics before any mutation.
func (ix *Index) AddEmbedded(c Chunk, v Vector) {
	if len(v) != ix.dim {
		panic(fmt.Sprintf("retrieval: AddEmbedded vector dim %d does not match index dim %d (chunk %s)",
			len(v), ix.dim, c.ID))
	}
	if ix.post != nil {
		ix.post.add(len(ix.chunks), v)
	}
	ix.chunks = append(ix.chunks, c)
	ix.arena.appendVec(v)
}

// AddEmbeddedBatch appends a parallel run of chunks and embeddings in one
// grow of each backing array — the multi-batch append path the group
// committer uses under its critical section. The batch is validated up front
// (vs parallel to cs, every vector at the index width), so a malformed batch
// panics with the store untouched instead of mis-indexing or dying mid-grow.
func (ix *Index) AddEmbeddedBatch(cs []Chunk, vs []Vector) {
	if len(cs) != len(vs) {
		panic(fmt.Sprintf("retrieval: AddEmbeddedBatch got %d chunks but %d vectors", len(cs), len(vs)))
	}
	for i := range vs {
		if len(vs[i]) != ix.dim {
			panic(fmt.Sprintf("retrieval: AddEmbeddedBatch vector %d dim %d does not match index dim %d (chunk %s)",
				i, len(vs[i]), ix.dim, cs[i].ID))
		}
	}
	if ix.post != nil {
		for i := range cs {
			ix.post.add(len(ix.chunks)+i, vs[i])
		}
	}
	ix.chunks = append(ix.chunks, cs...)
	ix.arena.grow(len(vs))
	for i := range vs {
		ix.arena.appendVec(vs[i])
	}
}

// CloneForAppend returns an index that shares the receiver's backing arrays
// but has its slice capacities clipped, so any subsequent append reallocates
// instead of writing into shared memory. This is the O(1) copy-on-write step
// behind snapshot isolation: the receiver (a published, read-only snapshot)
// is never mutated by writes to the clone.
func (ix *Index) CloneForAppend() Store {
	clone := &Index{
		dim:    ix.dim,
		chunks: ix.chunks[:len(ix.chunks):len(ix.chunks)],
		arena:  ix.arena.cloneForAppend(),
	}
	if ix.post != nil {
		clone.post = ix.post.cloneForAppend()
	}
	return clone
}

// ForEachEmbedded visits every chunk with its arena vector, in insertion
// order. Vectors alias the arena; callers must treat them as read-only.
func (ix *Index) ForEachEmbedded(fn func(c Chunk, v Vector)) {
	for i := range ix.chunks {
		fn(ix.chunks[i], ix.arena.at(i))
	}
}

// Len returns the number of indexed chunks.
func (ix *Index) Len() int { return len(ix.chunks) }

// Dim returns the embedding width, so callers can precompute vectors for
// AddEmbedded off-thread.
func (ix *Index) Dim() int { return ix.dim }

// Search returns the top-k chunks by cosine similarity to the query, ties
// broken by chunk ID for determinism.
func (ix *Index) Search(query string, k int) []Hit {
	return ix.SearchFiltered(query, k, nil)
}

// SearchFiltered is Search restricted to chunks whose source passes keep
// (nil keeps everything).
func (ix *Index) SearchFiltered(query string, k int, keep func(source string) bool) []Hit {
	if k <= 0 || len(ix.chunks) == 0 {
		return nil
	}
	return ix.SearchVector(Embed(query, ix.dim), k, keep)
}

// SearchVector runs the scan against a caller-supplied query vector, letting
// one embedding serve several sub-searches.
func (ix *Index) SearchVector(qv Vector, k int, keep func(source string) bool) []Hit {
	if k <= 0 || len(ix.chunks) == 0 {
		return nil
	}
	if ix.post != nil {
		if hits, ok := ix.searchPruned(qv, k, keep); ok {
			return hits
		}
	}
	return ix.scanAll(qv, k, keep)
}

// scanAll is the exact reference scan: every kept chunk through the bounded
// top-k selector.
func (ix *Index) scanAll(qv Vector, k int, keep func(string) bool) []Hit {
	t := newTopK(k)
	for i := range ix.chunks {
		if keep != nil && !keep(ix.chunks[i].Source) {
			continue
		}
		t.consider(ix.chunks[i], Cosine(qv, ix.arena.at(i)))
	}
	return t.sorted()
}

// searchPruned scans only the postings candidates. It reports ok only when
// the pruned result is provably identical to the full scan: the selector is
// full and its weakest hit scores strictly above zero, so every non-candidate
// (exact score zero) ranks below everything kept. Otherwise the caller must
// fall back to scanAll.
func (ix *Index) searchPruned(qv Vector, k int, keep func(string) bool) ([]Hit, bool) {
	cands := ix.post.candidates(qv, len(ix.chunks))
	if len(cands) < k {
		return nil, false
	}
	t := newTopK(k)
	for _, ord := range cands {
		if keep != nil && !keep(ix.chunks[ord].Source) {
			continue
		}
		t.consider(ix.chunks[ord], Cosine(qv, ix.arena.at(int(ord))))
	}
	if t.len() == k && t.worst().Score > 0 {
		return t.sorted(), true
	}
	return nil, false
}
