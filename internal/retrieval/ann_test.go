package retrieval

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// annVariant builds an ANN store over the given pre-embedded corpus.
func annVariant(dim, nprobe int, quantize bool, chunks []Chunk, vecs []Vector) *ANN {
	a := NewANN(Options{Dim: dim, NProbe: nprobe, ANNQuantize: quantize})
	a.AddEmbeddedBatch(chunks, vecs)
	return a
}

// TestANNExactWhenProbingAllCells is the degenerate-equivalence pin: with
// nprobe >= nlist every cell is probed, the candidate set is the whole
// corpus, and the exact re-ranker must reproduce the reference full-sort
// scan bit for bit — scores, IDs and order — including under keep filters.
// This is the ANN analogue of the exactness property the other strategies
// are pinned by.
func TestANNExactWhenProbingAllCells(t *testing.T) {
	const dim = 64
	rng := rand.New(rand.NewSource(21))
	chunks, vecs := randCorpus(rng, 500, dim)
	for _, quantize := range []bool{false, true} {
		// 1<<20 probes >> nlist, and in quantized mode the per-cell coarse
		// selector keeps 4k >= every cell's population for small cells — use
		// a generous k so the coarse pass cannot drop true candidates.
		a := annVariant(dim, 1<<20, quantize, chunks, vecs)
		keeps := map[string]func(string) bool{
			"nil":   nil,
			"drop0": func(src string) bool { return src != "src-0" },
		}
		for q := 0; q < 6; q++ {
			query := randText(rng)
			qv := Embed(query, dim)
			for keepName, keep := range keeps {
				got := a.SearchVector(qv, 5, keep)
				want := refSearch(chunks, vecs, qv, 5, keep)
				if quantize {
					// The int8 coarse pass may reorder which candidates reach
					// the exact re-ranker; require exact scores and >= 4/5
					// agreement instead of bit-identity.
					if overlap(got, want) < 4 {
						t.Fatalf("quantized all-probe recall too low: got %s want %s",
							fmtHits(got), fmtHits(want))
					}
					assertScoresExact(t, got, chunks, vecs, qv)
					continue
				}
				if !hitsEqual(got, want) {
					t.Fatalf("all-probe ANN diverges (keep=%s, query %q):\n got  %s\n want %s",
						keepName, query, fmtHits(got), fmtHits(want))
				}
			}
		}
	}
}

// overlap counts shared chunk IDs between two hit lists.
func overlap(a, b []Hit) int {
	ids := map[string]bool{}
	for _, h := range a {
		ids[h.Chunk.ID] = true
	}
	n := 0
	for _, h := range b {
		if ids[h.Chunk.ID] {
			n++
		}
	}
	return n
}

// assertScoresExact: every ANN hit's score must be the exact float64 Cosine
// of the query against that chunk's stored vector — the exact-re-rank
// contract (approximation may drop candidates, never perturb scores).
func assertScoresExact(t *testing.T, hits []Hit, chunks []Chunk, vecs []Vector, qv Vector) {
	t.Helper()
	byID := map[string]int{}
	for i := range chunks {
		byID[chunks[i].ID] = i
	}
	for _, h := range hits {
		i, ok := byID[h.Chunk.ID]
		if !ok {
			t.Fatalf("ANN returned unknown chunk %s", h.Chunk.ID)
		}
		if want := Cosine(qv, vecs[i]); h.Score != want {
			t.Fatalf("ANN score for %s = %.17g, exact = %.17g", h.Chunk.ID, h.Score, want)
		}
	}
}

// TestANNRecallAndExactScores measures the real approximate regime (default
// probes on a 3000-chunk corpus): recall@10 against the exact reference must
// clear a floor, scores must be exact, and order must obey the comparator.
func TestANNRecallAndExactScores(t *testing.T) {
	const dim = 64
	const k = 10
	rng := rand.New(rand.NewSource(22))
	chunks, vecs := randCorpus(rng, 3000, dim)
	for _, quantize := range []bool{false, true} {
		a := annVariant(dim, 8, quantize, chunks, vecs)
		total, hit := 0, 0
		for q := 0; q < 20; q++ {
			qv := Embed(randText(rng), dim)
			got := a.SearchVector(qv, k, nil)
			want := refSearch(chunks, vecs, qv, k, nil)
			assertScoresExact(t, got, chunks, vecs, qv)
			for i := 1; i < len(got); i++ {
				if beats(&got[i], &got[i-1]) {
					t.Fatalf("ANN hits out of order at %d: %s", i, fmtHits(got))
				}
			}
			hit += overlap(got, want)
			total += len(want)
		}
		recall := float64(hit) / float64(total)
		if recall < 0.8 {
			t.Fatalf("quantize=%v: recall@%d = %.3f, want >= 0.8 (deterministic corpus — a real regression)",
				quantize, k, recall)
		}
	}
}

// TestANNDeterministic: two independently built ANN stores over the same
// corpus must return identical hits (seeded init, fixed iteration order).
func TestANNDeterministic(t *testing.T) {
	const dim = 64
	rng := rand.New(rand.NewSource(23))
	chunks, vecs := randCorpus(rng, 800, dim)
	a := annVariant(dim, 4, false, chunks, vecs)
	b := annVariant(dim, 4, false, chunks, vecs)
	for q := 0; q < 10; q++ {
		qv := Embed(randText(rng), dim)
		if ha, hb := a.SearchVector(qv, 7, nil), b.SearchVector(qv, 7, nil); !hitsEqual(ha, hb) {
			t.Fatalf("ANN nondeterministic:\n a %s\n b %s", fmtHits(ha), fmtHits(hb))
		}
	}
}

// TestANNSmallCorpusStaysExact: below the annMinCorpus floor ANN must serve
// the exact flat scan, bit-identical to the reference.
func TestANNSmallCorpusStaysExact(t *testing.T) {
	const dim = 64
	rng := rand.New(rand.NewSource(24))
	chunks, vecs := randCorpus(rng, annMinCorpus-1, dim)
	a := annVariant(dim, 2, true, chunks, vecs)
	for q := 0; q < 8; q++ {
		qv := Embed(randText(rng), dim)
		got := a.SearchVector(qv, 6, nil)
		want := refSearch(chunks, vecs, qv, 6, nil)
		if !hitsEqual(got, want) {
			t.Fatalf("small-corpus ANN not exact:\n got  %s\n want %s", fmtHits(got), fmtHits(want))
		}
	}
}

// TestANNCloneForAppendIncremental exercises the generation-keyed lazy
// rebuild: a published snapshot's IVF structure is built on first search;
// the clone inherits it copy-on-write, a small append extends (not retrains)
// it on the clone's first search, the parent keeps serving its old corpus
// untouched, and a large append (past the retrain factor) retrains.
func TestANNCloneForAppendIncremental(t *testing.T) {
	const dim = 64
	rng := rand.New(rand.NewSource(25))
	chunks, vecs := randCorpus(rng, 600, dim)
	parent := annVariant(dim, 6, true, chunks, vecs)
	qv := Embed("status delayed typhoon", dim)
	parentHits := parent.SearchVector(qv, 5, nil) // forces the lazy build
	if _, _, covered := parent.IVFStats(); covered != 600 {
		t.Fatalf("parent build covered %d, want 600", covered)
	}
	trainedAt := parent.ivf.trainedAt

	// Small append: the clone must extend the inherited lists, not retrain.
	clone := parent.CloneForAppend().(*ANN)
	extra, extraVecs := randCorpus(rng, 50, dim)
	for i := range extra {
		extra[i].ID = "x-" + extra[i].ID
		clone.AddEmbedded(extra[i], extraVecs[i])
	}
	clone.SearchVector(qv, 5, nil)
	if clone.ivf.trainedAt != trainedAt {
		t.Fatalf("small append retrained: trainedAt %d -> %d", trainedAt, clone.ivf.trainedAt)
	}
	if _, _, covered := clone.IVFStats(); covered != 650 {
		t.Fatalf("clone covered %d, want 650", covered)
	}
	// An appended chunk must be findable through the extended lists.
	probe := clone.SearchVector(extraVecs[0], 3, nil)
	found := false
	for _, h := range probe {
		if h.Chunk.ID == extra[0].ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("appended chunk not retrievable from extended IVF: %s", fmtHits(probe))
	}
	// Parent unchanged: same length, same hits, same coverage.
	if parent.Len() != 600 {
		t.Fatalf("clone append changed parent length: %d", parent.Len())
	}
	if got := parent.SearchVector(qv, 5, nil); !hitsEqual(got, parentHits) {
		t.Fatalf("clone append changed parent results:\n got  %s\n want %s",
			fmtHits(got), fmtHits(parentHits))
	}
	if _, _, covered := parent.IVFStats(); covered != 600 {
		t.Fatalf("parent coverage changed: %d", covered)
	}

	// Large append: growing past the retrain factor must retrain.
	big := clone.CloneForAppend().(*ANN)
	more, moreVecs := randCorpus(rng, 1000, dim)
	for i := range more {
		more[i].ID = fmt.Sprintf("y%04d-%s", i, more[i].ID)
	}
	big.AddEmbeddedBatch(more, moreVecs)
	big.SearchVector(qv, 5, nil)
	if big.ivf.trainedAt == trainedAt {
		t.Fatalf("large append (%d -> %d) did not retrain", trainedAt, big.Len())
	}
	if _, _, covered := big.IVFStats(); covered != big.Len() {
		t.Fatalf("retrained coverage %d, want %d", covered, big.Len())
	}
}

// TestANNRecallHarnessAgreesWithScoreMAE sanity-checks the two harness
// metrics on a tiny case: perfect agreement means recall 1 and MAE 0.
func TestANNRecallHarnessAgreesWithScoreMAE(t *testing.T) {
	hits := []Hit{{Chunk: Chunk{ID: "a"}, Score: 0.9}, {Chunk: Chunk{ID: "b"}, Score: 0.5}}
	if r := RecallAtK(hits, hits); r != 1 {
		t.Fatalf("self recall = %v", r)
	}
	if mae := ScoreMAE(hits, hits); mae != 0 {
		t.Fatalf("self MAE = %v", mae)
	}
	approx := []Hit{{Chunk: Chunk{ID: "a"}, Score: 0.9}, {Chunk: Chunk{ID: "c"}, Score: 0.4}}
	if r := RecallAtK(approx, hits); r != 0.5 {
		t.Fatalf("recall = %v, want 0.5", r)
	}
	if mae := ScoreMAE(approx, hits); math.Abs(mae-0.05) > 1e-12 {
		t.Fatalf("MAE = %v, want 0.05", mae)
	}
}
