package retrieval

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// refSearch is the reference exact scan the layered variants must reproduce
// hit for hit: materialise every kept chunk, stable full sort by (score
// desc, ID asc), truncate to k — the seed implementation of Index.Search.
func refSearch(chunks []Chunk, vecs []Vector, qv Vector, k int, keep func(string) bool) []Hit {
	if k <= 0 {
		return nil
	}
	var hits []Hit
	for i := range chunks {
		if keep != nil && !keep(chunks[i].Source) {
			continue
		}
		hits = append(hits, Hit{Chunk: chunks[i], Score: Cosine(qv, vecs[i])})
	}
	sort.SliceStable(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Chunk.ID < hits[j].Chunk.ID
	})
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k]
}

// corpusVocab is small on purpose: heavy token overlap between chunks and
// queries exercises dense score ties and the postings pruning paths.
var corpusVocab = []string{
	"status", "delayed", "typhoon", "gate", "boarding", "director",
	"heat", "mann", "stock", "price", "acme", "airport", "departure",
	"ca981", "mu588", "noir", "garden", "harbor", "tokyo",
}

func randText(rng *rand.Rand) string {
	n := 1 + rng.Intn(7)
	words := make([]string, n)
	for i := range words {
		words[i] = corpusVocab[rng.Intn(len(corpusVocab))]
	}
	return strings.Join(words, " ")
}

// randCorpus builds n chunks with unique IDs, varied sources and vocab-drawn
// text, pre-embedded at the given width.
func randCorpus(rng *rand.Rand, n, dim int) ([]Chunk, []Vector) {
	chunks := make([]Chunk, n)
	vecs := make([]Vector, n)
	for i := range chunks {
		chunks[i] = Chunk{
			ID:     fmt.Sprintf("d%04d#c%d", i, rng.Intn(3)*1000+i),
			DocID:  fmt.Sprintf("d%04d", i),
			Source: fmt.Sprintf("src-%d", rng.Intn(4)),
			Text:   randText(rng),
		}
		vecs[i] = Embed(chunks[i].Text, dim)
	}
	return chunks, vecs
}

// variants builds every layered configuration over the same corpus.
func variants(dim int, chunks []Chunk, vecs []Vector) map[string]Store {
	out := map[string]Store{
		"flat":              New(Options{Dim: dim}),
		"flat+postings":     New(Options{Dim: dim, Postings: true}),
		"sharded2":          New(Options{Dim: dim, Shards: 2}),
		"sharded8":          New(Options{Dim: dim, Shards: 8}),
		"sharded8+postings": New(Options{Dim: dim, Shards: 8, Postings: true}),
		"sharded8+serial":   New(Options{Dim: dim, Shards: 8, Workers: 1}),
	}
	for _, st := range out {
		for i := range chunks {
			st.AddEmbedded(chunks[i], vecs[i])
		}
	}
	return out
}

func hitsEqual(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Chunk.ID != b[i].Chunk.ID || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

func fmtHits(hits []Hit) string {
	var sb strings.Builder
	for _, h := range hits {
		fmt.Fprintf(&sb, "%s:%.17g ", h.Chunk.ID, h.Score)
	}
	return sb.String()
}

// TestLayeredSearchMatchesFlatScanProperty is the acceptance property: for
// arbitrary corpora, queries and k, every layered configuration (sharded,
// postings-pruned, both, serial or parallel scan) returns hits identical to
// the reference full-sort scan — same IDs, bit-identical scores, same order.
func TestLayeredSearchMatchesFlatScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dim = 64
	for round := 0; round < 60; round++ {
		n := 1 + rng.Intn(120)
		chunks, vecs := randCorpus(rng, n, dim)
		vars := variants(dim, chunks, vecs)
		keeps := map[string]func(string) bool{
			"nil":   nil,
			"drop0": func(src string) bool { return src != "src-0" },
			"none":  func(string) bool { return false },
		}
		for q := 0; q < 4; q++ {
			query := randText(rng)
			qv := Embed(query, dim)
			k := 1 + rng.Intn(n+4) // deliberately may exceed corpus size
			for keepName, keep := range keeps {
				want := refSearch(chunks, vecs, qv, k, keep)
				for name, st := range vars {
					got := st.SearchVector(qv, k, keep)
					if !hitsEqual(got, want) {
						t.Fatalf("round %d %s keep=%s query=%q k=%d:\n got  %s\n want %s",
							round, name, keepName, query, k, fmtHits(got), fmtHits(want))
					}
				}
			}
			// The string entry points must agree too.
			want := refSearch(chunks, vecs, qv, k, nil)
			for name, st := range vars {
				if got := st.Search(query, k); !hitsEqual(got, want) {
					t.Fatalf("round %d %s Search(%q, %d) diverges:\n got  %s\n want %s",
						round, name, query, k, fmtHits(got), fmtHits(want))
				}
			}
		}
	}
}

// TestPostingsFallbackExact forces the pruned path to give up: the query
// shares no vocabulary with most of the corpus and k exceeds the candidate
// count, so non-candidates (exact score zero) must appear in ID order, just
// as the flat scan ranks them.
func TestPostingsFallbackExact(t *testing.T) {
	const dim = 32
	chunks := []Chunk{
		{ID: "a#c0", Source: "s", Text: "zebra quilt"},
		{ID: "b#c0", Source: "s", Text: "zebra quilt"},
		{ID: "c#c0", Source: "s", Text: "velvet prism"},
		{ID: "d#c0", Source: "s", Text: "status delayed"},
	}
	vecs := make([]Vector, len(chunks))
	for i := range chunks {
		vecs[i] = Embed(chunks[i].Text, dim)
	}
	qv := Embed("status delayed", dim)
	for name, st := range variants(dim, chunks, vecs) {
		got := st.SearchVector(qv, 4, nil)
		want := refSearch(chunks, vecs, qv, 4, nil)
		if !hitsEqual(got, want) {
			t.Fatalf("%s fallback diverges:\n got  %s\n want %s", name, fmtHits(got), fmtHits(want))
		}
		if got[0].Chunk.ID != "d#c0" {
			t.Fatalf("%s: lexical match must rank first, got %s", name, fmtHits(got))
		}
	}
}

// TestShardedCloneForAppendIsolation is the copy-on-write contract under
// sharding: appends to a clone must never change what an already-published
// shard serves.
func TestShardedCloneForAppendIsolation(t *testing.T) {
	for _, opts := range []Options{
		{Dim: 64, Shards: 4},
		{Dim: 64, Shards: 4, Postings: true},
		{Dim: 64, Postings: true},
	} {
		base := New(opts)
		rng := rand.New(rand.NewSource(3))
		chunks, vecs := randCorpus(rng, 40, 64)
		for i := range chunks {
			base.AddEmbedded(chunks[i], vecs[i])
		}
		qv := Embed("status delayed typhoon", 64)
		before := base.SearchVector(qv, 10, nil)
		lenBefore := base.Len()

		clone := base.CloneForAppend()
		extra, extraVecs := randCorpus(rng, 40, 64)
		for i := range extra {
			extra[i].ID = "x-" + extra[i].ID // keep IDs unique vs the base corpus
			clone.AddEmbedded(extra[i], extraVecs[i])
		}
		if base.Len() != lenBefore {
			t.Fatalf("shards=%d postings=%v: clone append changed published Len: %d -> %d",
				opts.Shards, opts.Postings, lenBefore, base.Len())
		}
		if got := base.SearchVector(qv, 10, nil); !hitsEqual(got, before) {
			t.Fatalf("shards=%d postings=%v: clone append changed published results:\n got  %s\n want %s",
				opts.Shards, opts.Postings, fmtHits(got), fmtHits(before))
		}
		if clone.Len() != lenBefore+len(extra) {
			t.Fatalf("clone lost appends: %d", clone.Len())
		}
	}
}

// TestTopKSelector pins the bounded selector against sort on random inputs,
// including duplicate scores.
func TestTopKSelector(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 200; round++ {
		n := rng.Intn(50)
		chunks := make([]Chunk, n)
		scores := make([]float64, n)
		for i := range chunks {
			chunks[i] = Chunk{ID: fmt.Sprintf("c%03d", i)}
			scores[i] = float64(rng.Intn(5)) / 4 // few distinct values → ties
		}
		k := 1 + rng.Intn(12)
		sel := newTopK(k)
		var all []Hit
		for i := range chunks {
			sel.consider(chunks[i], scores[i])
			all = append(all, Hit{Chunk: chunks[i], Score: scores[i]})
		}
		sort.SliceStable(all, func(i, j int) bool {
			if all[i].Score != all[j].Score {
				return all[i].Score > all[j].Score
			}
			return all[i].Chunk.ID < all[j].Chunk.ID
		})
		if k > len(all) {
			k = len(all)
		}
		want := all[:k]
		if got := sel.sorted(); !hitsEqual(got, want) {
			t.Fatalf("round %d: topK(%d) over %d hits:\n got  %s\n want %s",
				round, k, n, fmtHits(got), fmtHits(want))
		}
	}
}

// TestEmbedCallsCounter verifies the instrumentation the core embedding
// cache asserts against.
func TestEmbedCallsCounter(t *testing.T) {
	before := EmbedCalls()
	Embed("counter probe", 16)
	Embed("counter probe", 16)
	if got := EmbedCalls() - before; got < 2 {
		t.Fatalf("EmbedCalls advanced by %d, want >= 2", got)
	}
}

// TestAddEmbeddedBatchMatchesPerChunk pins the batched append path: for both
// the flat and the sharded store, AddEmbeddedBatch must produce an index
// identical (length and search results) to per-chunk AddEmbedded.
func TestAddEmbeddedBatchMatchesPerChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var chunks []Chunk
	var vecs []Vector
	for i := 0; i < 60; i++ {
		text := fmt.Sprintf("%s %s %d", corpusVocab[rng.Intn(len(corpusVocab))],
			corpusVocab[rng.Intn(len(corpusVocab))], i)
		c := Chunk{ID: fmt.Sprintf("d%d#c0", i), DocID: fmt.Sprintf("d%d", i),
			Source: fmt.Sprintf("src-%d", i%3), Text: text}
		chunks = append(chunks, c)
		vecs = append(vecs, Embed(text, DefaultDim))
	}
	for _, shards := range []int{1, 8} {
		single := New(Options{Shards: shards, Postings: true})
		batched := New(Options{Shards: shards, Postings: true})
		for i := range chunks {
			single.AddEmbedded(chunks[i], vecs[i])
		}
		batched.AddEmbeddedBatch(chunks, vecs)
		if single.Len() != batched.Len() {
			t.Fatalf("shards=%d: lengths diverge %d vs %d", shards, single.Len(), batched.Len())
		}
		for q := 0; q < 10; q++ {
			query := fmt.Sprintf("%s status %d", corpusVocab[q%len(corpusVocab)], q)
			a := single.Search(query, 7)
			b := batched.Search(query, 7)
			if len(a) != len(b) {
				t.Fatalf("shards=%d query %q: hit counts diverge", shards, query)
			}
			for i := range a {
				if a[i].Chunk.ID != b[i].Chunk.ID || a[i].Score != b[i].Score {
					t.Fatalf("shards=%d query %q hit %d diverges: %+v vs %+v", shards, query, i, a[i], b[i])
				}
			}
		}
	}
}
