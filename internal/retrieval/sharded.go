package retrieval

import (
	"fmt"

	"multirag/internal/par"
	"multirag/internal/textutil"
)

// Sharded is a hash-partitioned exact index: chunks are routed to one of n
// flat shards by a stable hash of their chunk ID, and a query scans the
// shards in parallel via the internal/par fan-out primitive (bounded per
// query by Options.Workers; concurrent queries each fan out independently),
// merging per-shard top-k results. Partitioning by content-independent hash
// keeps every shard
// an unbiased sample of the corpus, so per-shard top-k plus a merge is
// exactly global top-k. Results are bit-identical to the flat Index: the
// same per-chunk Cosine calls produce the same float64 scores, and the merge
// re-ranks with the same (score desc, ID asc) comparator.
//
// Copy-on-write works per shard: CloneForAppend clips every shard, so an
// ingest commit appends into private tails while published snapshots keep
// serving the old arrays — PR 1's snapshot-isolation contract, preserved
// shard by shard.
type Sharded struct {
	dim     int
	workers int
	shards  []*Index
}

// NewSharded builds an empty sharded index from opts (Shards must be >= 2;
// use New to fall back to the flat index otherwise).
func NewSharded(opts Options) *Sharded {
	dim := opts.Dim
	if dim <= 0 {
		dim = DefaultDim
	}
	s := &Sharded{dim: dim, workers: opts.Workers, shards: make([]*Index, opts.Shards)}
	for i := range s.shards {
		s.shards[i] = NewIndex(dim)
		if opts.Postings {
			s.shards[i].post = newPostings(dim)
		}
	}
	return s
}

// shardOf routes a chunk ID to its home shard. The hash is salted so shard
// routing is independent of the embedding bucket hash.
func (s *Sharded) shardOf(id string) int {
	return int(textutil.Hash64("shard|"+id) % uint64(len(s.shards)))
}

// Add inserts a chunk, embedding it inline.
func (s *Sharded) Add(c Chunk) { s.AddEmbedded(c, Embed(c.Text, s.dim)) }

// AddEmbedded inserts a chunk with a precomputed embedding into its home
// shard.
func (s *Sharded) AddEmbedded(c Chunk, v Vector) {
	s.shards[s.shardOf(c.ID)].AddEmbedded(c, v)
}

// AddEmbeddedBatch routes a parallel run of pre-embedded chunks to their home
// shards: one routing hash per chunk, then one batched append per shard that
// received anything, so every shard's backing arrays grow at most once per
// batch (the contract the Store interface states). The batch is validated
// before any shard is touched, so a malformed batch can never leave some
// shards mutated and others not.
func (s *Sharded) AddEmbeddedBatch(cs []Chunk, vs []Vector) {
	if len(cs) != len(vs) {
		panic(fmt.Sprintf("retrieval: AddEmbeddedBatch got %d chunks but %d vectors", len(cs), len(vs)))
	}
	for i := range vs {
		if len(vs[i]) != s.dim {
			panic(fmt.Sprintf("retrieval: AddEmbeddedBatch vector %d dim %d does not match index dim %d (chunk %s)",
				i, len(vs[i]), s.dim, cs[i].ID))
		}
	}
	if len(cs) == 1 {
		s.AddEmbedded(cs[0], vs[0])
		return
	}
	byShard := make([][]int, len(s.shards))
	for i := range cs {
		sh := s.shardOf(cs[i].ID)
		byShard[sh] = append(byShard[sh], i)
	}
	for sh, ords := range byShard {
		if len(ords) == 0 {
			continue
		}
		cc := make([]Chunk, len(ords))
		vv := make([]Vector, len(ords))
		for j, o := range ords {
			cc[j] = cs[o]
			vv[j] = vs[o]
		}
		s.shards[sh].AddEmbeddedBatch(cc, vv)
	}
}

// CloneForAppend clips every shard (O(shards) slice headers), preserving the
// per-shard copy-on-write contract.
func (s *Sharded) CloneForAppend() Store {
	clone := &Sharded{dim: s.dim, workers: s.workers, shards: make([]*Index, len(s.shards))}
	for i, sh := range s.shards {
		clone.shards[i] = sh.CloneForAppend().(*Index)
	}
	return clone
}

// ForEachEmbedded visits every chunk with its stored vector, shard by shard
// in shard order. Re-inserting the sequence through AddEmbedded routes every
// chunk back to its original shard (routing hashes only the chunk ID), so the
// enumeration order is reproduced exactly after a decode round-trip.
func (s *Sharded) ForEachEmbedded(fn func(c Chunk, v Vector)) {
	for _, sh := range s.shards {
		sh.ForEachEmbedded(fn)
	}
}

// Len returns the number of indexed chunks across all shards.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Dim returns the embedding width.
func (s *Sharded) Dim() int { return s.dim }

// Search returns the top-k chunks by cosine similarity to the query.
func (s *Sharded) Search(query string, k int) []Hit {
	return s.SearchFiltered(query, k, nil)
}

// SearchFiltered is Search restricted to chunks whose source passes keep.
func (s *Sharded) SearchFiltered(query string, k int, keep func(source string) bool) []Hit {
	if k <= 0 || s.Len() == 0 {
		return nil
	}
	return s.SearchVector(Embed(query, s.dim), k, keep)
}

// SearchVector fans the scan out across the shards and merges the per-shard
// winners. The merge feeds shard results in fixed shard order, but order
// cannot matter: chunk IDs are unique across shards, so the comparator is a
// strict total order on hits.
func (s *Sharded) SearchVector(qv Vector, k int, keep func(source string) bool) []Hit {
	if k <= 0 {
		return nil
	}
	perShard := make([][]Hit, len(s.shards))
	par.ForEach(s.workers, len(s.shards), func(i int) {
		perShard[i] = s.shards[i].SearchVector(qv, k, keep)
	})
	merged := newTopK(k)
	for _, hits := range perShard {
		for i := range hits {
			merged.consider(hits[i].Chunk, hits[i].Score)
		}
	}
	return merged.sorted()
}
