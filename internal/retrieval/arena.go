package retrieval

import "fmt"

// arena is the flat vector store backing Index: every embedding lives back to
// back in one contiguous []float32 with stride = dim, so a scan walks memory
// linearly instead of chasing one pointer per chunk (the seed slice-of-slices
// layout). The width is fixed at construction; appends of any other width are
// rejected up front (see appendVec), which is what lets every reader index
// the arena by ordinal arithmetic alone.
//
// Copy-on-write works exactly like the chunk slice in Index.CloneForAppend:
// cloneForAppend clips the backing slice's capacity, so the first append on a
// clone reallocates into private memory while published snapshots keep
// serving the shared prefix.
type arena struct {
	dim  int
	data []float32
}

func newArena(dim int) *arena { return &arena{dim: dim} }

// len returns the number of stored vectors.
func (a *arena) len() int { return len(a.data) / a.dim }

// at returns the i-th stored vector as a view into the arena. Callers must
// treat it as read-only: the backing memory is shared across snapshots.
func (a *arena) at(i int) Vector { return a.data[i*a.dim : (i+1)*a.dim] }

// appendVec copies v into the arena. The width is fixed at first use of the
// index, so a mismatched vector is a programmer error: it is rejected before
// any mutation rather than silently mis-striding every later read.
func (a *arena) appendVec(v Vector) {
	if len(v) != a.dim {
		panic(fmt.Sprintf("retrieval: vector dim %d does not match index dim %d", len(v), a.dim))
	}
	a.data = append(a.data, v...)
}

// grow reserves room for n more vectors, so a batch append reallocates the
// backing array at most once (the Store.AddEmbeddedBatch contract). The
// reservation takes geometric headroom: repeated batch appends to one index —
// the WAL replay path feeds thousands of single-group records into the same
// store — must amortise to O(total), not recopy the whole arena per batch.
// Exact-size growth here was quadratic. Snapshot clones clip capacity
// (cloneForAppend), so published snapshots never expose the spare room.
func (a *arena) grow(n int) {
	need := len(a.data) + n*a.dim
	if need <= cap(a.data) {
		return
	}
	grown := make([]float32, len(a.data), max(need, len(a.data)+len(a.data)/2))
	copy(grown, a.data)
	a.data = grown
}

// cloneForAppend returns the O(1) copy-on-write clone: shared backing array,
// clipped capacity.
func (a *arena) cloneForAppend() *arena {
	return &arena{dim: a.dim, data: a.data[:len(a.data):len(a.data)]}
}
