package retrieval

// topK is a bounded selector for the k best hits of a scan. It keeps at most
// k hits in a binary min-heap whose root is the weakest kept hit (lowest
// score; among equal scores, highest chunk ID — the reverse of the output
// order, so the root is always the next hit to evict). A scan over N chunks
// therefore does O(N log k) comparisons and O(k) allocation, where the
// full-sort idiom it replaces materialised N hits and paid O(N log N).
//
// Determinism: for any multiset of (score, ID) pairs with distinct IDs, the
// kept set and its sorted() order are exactly the first k elements of the
// stable full sort by (score desc, ID asc) — the contract the property tests
// pin against the reference scan.
type topK struct {
	k    int
	hits []Hit
}

// newTopK returns a selector for the k best hits. k must be > 0.
func newTopK(k int) *topK {
	cap := k
	if cap > 1024 {
		cap = 1024 // defensive: callers may pass k >> corpus size
	}
	return &topK{k: k, hits: make([]Hit, 0, cap)}
}

// beats reports whether hit a outranks hit b in the output order:
// higher score first, ties broken by ascending chunk ID.
func beats(a, b *Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Chunk.ID < b.Chunk.ID
}

// consider offers one scanned hit to the selector.
func (t *topK) consider(c Chunk, score float64) {
	h := Hit{Chunk: c, Score: score}
	if len(t.hits) < t.k {
		t.hits = append(t.hits, h)
		t.siftUp(len(t.hits) - 1)
		return
	}
	// Full: the new hit enters only if it outranks the current weakest.
	if !beats(&h, &t.hits[0]) {
		return
	}
	t.hits[0] = h
	t.siftDown(0, len(t.hits))
}

// weaker reports whether hits[i] should sit closer to the heap root than
// hits[j], i.e. hits[i] is evicted before hits[j].
func (t *topK) weaker(i, j int) bool { return beats(&t.hits[j], &t.hits[i]) }

func (t *topK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.weaker(i, parent) {
			return
		}
		t.hits[i], t.hits[parent] = t.hits[parent], t.hits[i]
		i = parent
	}
}

func (t *topK) siftDown(i, n int) {
	for {
		least := i
		if l := 2*i + 1; l < n && t.weaker(l, least) {
			least = l
		}
		if r := 2*i + 2; r < n && t.weaker(r, least) {
			least = r
		}
		if least == i {
			return
		}
		t.hits[i], t.hits[least] = t.hits[least], t.hits[i]
		i = least
	}
}

// len reports how many hits are currently kept.
func (t *topK) len() int { return len(t.hits) }

// worst returns the weakest kept hit; the selector must be non-empty.
func (t *topK) worst() *Hit { return &t.hits[0] }

// sorted consumes the heap and returns the kept hits in output order (score
// desc, ID asc). The selector must not be reused afterwards. An empty
// selector returns nil, matching the historical Search contract.
func (t *topK) sorted() []Hit {
	if len(t.hits) == 0 {
		return nil
	}
	// Heapsort: repeatedly move the weakest hit to the shrinking tail, so the
	// array ends ordered best-first.
	for end := len(t.hits) - 1; end > 0; end-- {
		t.hits[0], t.hits[end] = t.hits[end], t.hits[0]
		t.siftDown(0, end)
	}
	return t.hits
}
