package retrieval

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// fullSortSearch reproduces the seed implementation of Index.Search — one
// Hit per indexed chunk, stable full sort — as the baseline the heap
// selector is measured against.
func fullSortSearch(chunks []Chunk, vecs []Vector, qv Vector, k int) []Hit {
	hits := make([]Hit, len(chunks))
	for i := range chunks {
		hits[i] = Hit{Chunk: chunks[i], Score: Cosine(qv, vecs[i])}
	}
	sort.SliceStable(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Chunk.ID < hits[j].Chunk.ID
	})
	if k > len(hits) {
		k = len(hits)
	}
	return hits[:k]
}

// benchSizes are the corpus scales BenchmarkSearch sweeps; the heap selector
// must beat the full sort at the 10k point and above.
var benchSizes = []int{1000, 10000, 50000}

func benchCorpusSized(b *testing.B, n, dim int) ([]Chunk, []Vector) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return randCorpus(rng, n, dim)
}

// BenchmarkSearch compares the retrieval strategies at k=5 across corpus
// sizes: the seed full-sort scan, the bounded heap scan, the postings-pruned
// scan and the sharded parallel scan.
func BenchmarkSearch(b *testing.B) {
	const dim = DefaultDim
	const k = 5
	for _, n := range benchSizes {
		if testing.Short() && n > 10000 {
			continue
		}
		chunks, vecs := benchCorpusSized(b, n, dim)
		qv := Embed("status delayed typhoon airport", dim)

		b.Run(fmt.Sprintf("fullsort/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fullSortSearch(chunks, vecs, qv, k)
			}
		})
		for name, opts := range map[string]Options{
			"heap":             {Dim: dim},
			"heap+postings":    {Dim: dim, Postings: true},
			"sharded8":         {Dim: dim, Shards: 8},
			"sharded8+posting": {Dim: dim, Shards: 8, Postings: true},
		} {
			st := New(opts)
			for i := range chunks {
				st.AddEmbedded(chunks[i], vecs[i])
			}
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					st.SearchVector(qv, k, nil)
				}
			})
		}
	}
}

// BenchmarkSearchTopKWidth sweeps k at a fixed corpus size, the axis where
// heap selection's O(N log k) pays off over O(N log N).
func BenchmarkSearchTopKWidth(b *testing.B) {
	const dim = DefaultDim
	const n = 10000
	chunks, vecs := benchCorpusSized(b, n, dim)
	qv := Embed("status delayed typhoon airport", dim)
	st := New(Options{Dim: dim})
	for i := range chunks {
		st.AddEmbedded(chunks[i], vecs[i])
	}
	for _, k := range []int{1, 5, 20, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st.SearchVector(qv, k, nil)
			}
		})
	}
}
