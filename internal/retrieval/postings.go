package retrieval

// postings is the inverted-postings candidate pre-filter: one posting list
// per embedding bucket, holding (in insertion order, which is ordinal order)
// every chunk whose stored vector is non-zero in that bucket. Because the
// feature-hashed embedding writes a token's weight into exactly one bucket,
// a bucket's posting list is the hashed form of "chunks containing one of
// the tokens that land in this bucket".
//
// The pruning is lossless by construction: a chunk outside the union of the
// query's non-zero buckets has a dot product of exactly zero (every term of
// the sum is zero), so any chunk that could score non-zero is a candidate.
// The scan over candidates therefore computes exact scores for every chunk
// that can outrank the zero-score remainder. When the candidate scan cannot
// prove the full top-k ranks strictly above zero (small corpora, huge k, or
// queries with no lexical overlap), search falls back to the exact flat scan
// — identical results either way, which the property tests pin.
type postings struct {
	lists [][]int32
}

// newPostings returns an empty pre-filter for dim embedding buckets.
func newPostings(dim int) *postings {
	return &postings{lists: make([][]int32, dim)}
}

// add posts chunk ordinal ord under every non-zero bucket of v. Ordinals
// must be added in increasing order (append order), keeping each list sorted.
func (p *postings) add(ord int, v Vector) {
	for d, x := range v {
		if x != 0 {
			p.lists[d] = append(p.lists[d], int32(ord))
		}
	}
}

// cloneForAppend returns a copy-on-write clone: the outer slice is copied
// (O(dim)) and every list's capacity is clipped, so posting appends on the
// clone reallocate instead of writing into the receiver's backing arrays.
// Like the chunk/vector clip in Index.CloneForAppend, this makes the first
// append per touched list copy that list — an O(corpus) cost per commit
// already accepted for snapshot isolation (DESIGN.md "Costs accepted").
func (p *postings) cloneForAppend() *postings {
	lists := make([][]int32, len(p.lists))
	for d, l := range p.lists {
		lists[d] = l[:len(l):len(l)]
	}
	return &postings{lists: lists}
}

// candidates returns the deduplicated union of the posting lists for the
// query vector's non-zero buckets — exactly the set of chunk ordinals with a
// possibly non-zero cosine against qv. n is the indexed chunk count; a
// visited bitmap keeps dedup O(union) instead of sorting it, and the result
// order is irrelevant: the top-k selector's comparator is a strict total
// order over distinct ordinals.
func (p *postings) candidates(qv Vector, n int) []int32 {
	var total int
	for d, x := range qv {
		if x != 0 {
			total += len(p.lists[d])
		}
	}
	if total == 0 {
		return nil
	}
	seen := make([]bool, n)
	out := make([]int32, 0, total)
	for d, x := range qv {
		if x == 0 {
			continue
		}
		for _, ord := range p.lists[d] {
			if !seen[ord] {
				seen[ord] = true
				out = append(out, ord)
			}
		}
	}
	return out
}
