package retrieval

// dot32 is the 4-way unrolled float32 dot-product kernel for the ANN coarse
// pass (centroid scoring, k-means training and assignment). Four independent
// accumulators break the loop-carried dependency chain so the scalar FPU can
// pipeline the multiplies; the slice re-slice lets the compiler hoist the
// bounds checks. It deliberately does NOT replace Cosine: exact-path scores
// stay float64 bit-for-bit (see dot_test.go), and dot32's float32
// accumulation order is part of the coarse pass's accepted approximation.
func dot32(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a, b = a[:n], b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// dot8 is the int8 counterpart for the quantized coarse pass: 4-way unrolled
// int32 accumulation over two equally long int8 rows. Integer accumulation is
// exact, so the only quantization error is in the per-vector scales applied
// by the caller.
func dot8(a, b []int8) int32 {
	var s0, s1, s2, s3 int32
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	a, b = a[:n], b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += int32(a[i]) * int32(b[i])
		s1 += int32(a[i+1]) * int32(b[i+1])
		s2 += int32(a[i+2]) * int32(b[i+2])
		s3 += int32(a[i+3]) * int32(b[i+3])
	}
	for ; i < n; i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// quantize8 maps v onto int8 with a single per-vector scale (symmetric
// round-to-nearest): q[i] = round(v[i] / scale), scale = maxabs / 127. The
// caller reconstructs approximate dot products as dot8(qa, qb) * scaleA *
// scaleB. A zero vector quantizes to scale 0, which dequantizes every
// product with it to 0 — exactly its true dot product.
func quantize8(v Vector, out []int8) (scale float32) {
	var maxabs float32
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > maxabs {
			maxabs = x
		}
	}
	if maxabs == 0 {
		for i := range v {
			out[i] = 0
		}
		return 0
	}
	scale = maxabs / 127
	inv := 127 / maxabs
	for i, x := range v {
		q := x * inv
		if q >= 0 {
			out[i] = int8(q + 0.5)
		} else {
			out[i] = int8(q - 0.5)
		}
	}
	return scale
}
