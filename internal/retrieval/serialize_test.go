package retrieval

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"multirag/internal/wal"
)

func fillStore(s Store, n int) {
	cs := make([]Chunk, n)
	vs := make([]Vector, n)
	for i := 0; i < n; i++ {
		cs[i] = Chunk{
			ID:     fmt.Sprintf("doc%d#c%d", i/4, i%4),
			DocID:  fmt.Sprintf("doc%d", i/4),
			Source: fmt.Sprintf("s%d", i%3),
			Text:   fmt.Sprintf("chunk %d about topic %d", i, i%7),
		}
		vs[i] = Embed(cs[i].Text, s.Dim())
	}
	s.AddEmbeddedBatch(cs, vs)
}

func encodeStore(s Store) []byte {
	var e wal.Encoder
	EncodeStore(&e, s)
	return append([]byte(nil), e.Bytes()...)
}

func TestStoreSerializeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
		n    int
	}{
		{"flat-empty", Options{Dim: 32}, 0},
		{"flat", Options{Dim: 32}, 50},
		{"postings", Options{Dim: 32, Postings: true}, 50},
		{"sharded", Options{Dim: 32, Shards: 4}, 120},
		{"ann", Options{Dim: 32, ANN: true}, 60},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := New(tc.opts)
			fillStore(src, tc.n)
			raw := encodeStore(src)
			dst := New(tc.opts)
			d := wal.NewDecoder(raw)
			if err := DecodeIntoStore(d, dst); err != nil {
				t.Fatal(err)
			}
			if err := d.Finish(); err != nil {
				t.Fatal(err)
			}
			if dst.Len() != src.Len() {
				t.Fatalf("Len diverges: got %d want %d", dst.Len(), src.Len())
			}
			// Identical search results, score for score.
			for _, q := range []string{"topic 3", "chunk 11", "nothing relevant"} {
				got, want := dst.Search(q, 10), src.Search(q, 10)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Search(%q) diverges:\n got  %v\n want %v", q, got, want)
				}
			}
			// Deterministic bytes: the decoded store re-encodes identically.
			if !bytes.Equal(encodeStore(dst), raw) {
				t.Fatal("re-encoded bytes differ from original encoding")
			}
		})
	}
}

func TestDecodeIntoStoreValidates(t *testing.T) {
	src := New(Options{Dim: 16})
	fillStore(src, 5)
	raw := encodeStore(src)

	if err := DecodeIntoStore(wal.NewDecoder(raw), New(Options{Dim: 32})); err == nil {
		t.Fatal("decode accepted a dim mismatch")
	}
	full := New(Options{Dim: 16})
	fillStore(full, 1)
	if err := DecodeIntoStore(wal.NewDecoder(raw), full); err == nil {
		t.Fatal("decode accepted a non-empty target store")
	}
	for cut := 0; cut < len(raw); cut++ {
		dst := New(Options{Dim: 16})
		d := wal.NewDecoder(raw[:cut])
		if err := DecodeIntoStore(d, dst); err == nil {
			if err := d.Finish(); err == nil {
				t.Fatalf("cut %d: decode of truncated stream succeeded", cut)
			}
		}
	}
}
