package retrieval

// Searcher is the read-side retrieval contract: cosine top-k over an
// immutable view of the indexed chunks. The flat Index, the Sharded index
// and the approximate ANN tier all implement it, so the serving engine,
// baselines and benchmarks can swap scan strategies without touching call
// sites.
//
// Every exact implementation returns identical results for identical corpora
// — score for score, hit for hit, in (score desc, chunk ID asc) order —
// which is what lets the engine treat the shard count and the postings
// pre-filter as pure performance knobs. The property tests in sharded_test.go
// pin that contract against a reference full-sort scan. The ANN tier is the
// one deliberate exception: its per-hit scores are still exact (float64
// re-rank), but hits outside the probed cells can be missed, a loss the
// recall harness in internal/bench measures instead of pinning away.
type Searcher interface {
	// Len returns the number of indexed chunks.
	Len() int
	// Dim returns the embedding width, so callers can precompute query
	// vectors for SearchVector.
	Dim() int
	// Search returns the top-k chunks by cosine similarity to the query,
	// ties broken by chunk ID.
	Search(query string, k int) []Hit
	// SearchFiltered is Search restricted to chunks whose source passes
	// keep (nil keeps everything).
	SearchFiltered(query string, k int, keep func(source string) bool) []Hit
	// SearchVector is the embedding-reuse entry point: it runs the same
	// scan against a caller-supplied query vector, so one embedding can
	// serve several sub-searches (multi-hop bridging, doc-ranking fill).
	SearchVector(qv Vector, k int, keep func(source string) bool) []Hit
}

// Store extends Searcher with the write-side operations the ingest engine
// uses: appends and the O(1) copy-on-write clone behind snapshot isolation.
type Store interface {
	Searcher
	// Add inserts a chunk, embedding it inline.
	Add(c Chunk)
	// AddEmbedded inserts a chunk with a precomputed embedding.
	AddEmbedded(c Chunk, v Vector)
	// AddEmbeddedBatch inserts many pre-embedded chunks at once (vs must be
	// parallel to cs). The group committer appends a whole commit group's
	// chunks through this path, growing the backing arrays once per batch
	// instead of once per chunk.
	AddEmbeddedBatch(cs []Chunk, vs []Vector)
	// CloneForAppend returns a store that shares the receiver's backing
	// arrays with clipped capacities, so appends to the clone never mutate
	// the receiver (a published, read-only snapshot).
	CloneForAppend() Store
	// ForEachEmbedded visits every chunk with its stored embedding, in a
	// deterministic order that re-inserting through AddEmbedded reproduces
	// (flat insertion order for the Index; shard by shard for Sharded, which
	// routes by chunk ID and so re-partitions identically). The durability
	// checkpoint serializes stores through it. Vectors alias internal
	// storage and must not be mutated.
	ForEachEmbedded(fn func(c Chunk, v Vector))
}

// Options configures New.
type Options struct {
	// Dim is the embedding width (<=0 selects DefaultDim).
	Dim int
	// Shards is the number of hash partitions scanned in parallel; <=1
	// selects the flat single-shard index.
	Shards int
	// Postings enables the inverted-postings candidate pre-filter on every
	// shard (see postings.go).
	Postings bool
	// Workers bounds the per-query shard-scan fan-out (<=0 selects
	// GOMAXPROCS). Ignored by the flat index.
	Workers int
	// ANN selects the approximate IVF tier with exact re-rank (see ann.go).
	// Unlike every other knob it is NOT exact: results can miss candidates
	// outside the probed cells, so it is off by default and A/B'd against
	// the exact scan by the recall harness instead of equivalence-pinned.
	// When set, Shards and Postings are ignored.
	ANN bool
	// NProbe is how many coarse-quantizer cells an ANN query probes (<=0
	// selects DefaultNProbe). More probes = higher recall, slower queries.
	NProbe int
	// ANNQuantize runs the ANN coarse pass over an int8-quantized mirror of
	// the vector arena (per-vector scale); final scores are still exact
	// float64 re-ranks. Ignored unless ANN is set.
	ANNQuantize bool
}

// New assembles a Store from opts: the approximate ANN tier when opts.ANN is
// set, a flat Index for Shards <= 1, a Sharded index otherwise, each exact
// variant with or without the postings pre-filter.
func New(opts Options) Store {
	if opts.ANN {
		return NewANN(opts)
	}
	if opts.Shards > 1 {
		return NewSharded(opts)
	}
	ix := NewIndex(opts.Dim)
	if opts.Postings {
		ix.post = newPostings(ix.dim)
	}
	return ix
}
