package retrieval

import (
	"context"

	"multirag/internal/fault"
	"multirag/internal/par"
)

// ctxCheckRows is how many rows an exact scan covers between context checks.
// A 256-wide dot product is ~100ns, so the cancellation granularity is a few
// hundred microseconds — far inside the ≤50ms slot-release budget — while the
// check itself (one atomic load via ctx.Err every 4096 rows) is noise.
const ctxCheckRows = 4096

// SearchVectorCtx is SearchVector with cooperative cancellation: the scan
// stops between rows, shards or probes once ctx is done and returns the
// context error with no hits. A context that can never be canceled takes the
// exact SearchVector path, so context-free callers keep bit-identical
// results. It is also the retrieval layer's fault-injection point
// (fault.PointRetrievalScan).
func SearchVectorCtx(ctx context.Context, s Searcher, qv Vector, k int, keep func(source string) bool) ([]Hit, error) {
	if err := fault.Inject(ctx, fault.PointRetrievalScan); err != nil {
		return nil, err
	}
	if ctx.Done() == nil {
		return s.SearchVector(qv, k, keep), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch ix := s.(type) {
	case *Index:
		return ix.searchVectorCtx(ctx, qv, k, keep)
	case *Sharded:
		return ix.searchVectorCtx(ctx, qv, k, keep)
	case *ANN:
		return ix.searchVectorCtx(ctx, qv, k, keep)
	default:
		// Unknown implementation: run it to completion (no cancellation
		// points inside), then honor the context for the result.
		hits := s.SearchVector(qv, k, keep)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return hits, nil
	}
}

// searchVectorCtx mirrors SearchVector with periodic context checks. The
// pruned fast path is attempted as usual (its candidate set is already a
// small fraction of the corpus); the exact scan checks every ctxCheckRows.
func (ix *Index) searchVectorCtx(ctx context.Context, qv Vector, k int, keep func(string) bool) ([]Hit, error) {
	if k <= 0 || len(ix.chunks) == 0 {
		return nil, ctx.Err()
	}
	if ix.post != nil {
		if hits, ok := ix.searchPrunedCtx(ctx, qv, k, keep); ok {
			return hits, ctx.Err()
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	t := newTopK(k)
	for i := range ix.chunks {
		if i%ctxCheckRows == 0 && i > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if keep != nil && !keep(ix.chunks[i].Source) {
			continue
		}
		t.consider(ix.chunks[i], Cosine(qv, ix.arena.at(i)))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t.sorted(), nil
}

// searchPrunedCtx is searchPruned with periodic context checks over the
// candidate list. On cancellation it reports ok with a nil result; the caller
// surfaces the context error.
func (ix *Index) searchPrunedCtx(ctx context.Context, qv Vector, k int, keep func(string) bool) ([]Hit, bool) {
	cands := ix.post.candidates(qv, len(ix.chunks))
	if len(cands) < k {
		return nil, false
	}
	t := newTopK(k)
	for i, ord := range cands {
		if i%ctxCheckRows == 0 && i > 0 && ctx.Err() != nil {
			return nil, true
		}
		if keep != nil && !keep(ix.chunks[ord].Source) {
			continue
		}
		t.consider(ix.chunks[ord], Cosine(qv, ix.arena.at(int(ord))))
	}
	if t.len() == k && t.worst().Score > 0 {
		return t.sorted(), true
	}
	return nil, false
}

// searchVectorCtx fans out as SearchVector does but stops claiming shards
// once ctx is done.
func (s *Sharded) searchVectorCtx(ctx context.Context, qv Vector, k int, keep func(string) bool) ([]Hit, error) {
	if k <= 0 {
		return nil, ctx.Err()
	}
	perShard := make([][]Hit, len(s.shards))
	// A per-shard scan errors only when ctx is done, which the fan-out's own
	// final ctx check reports — no separate error channel needed.
	if err := par.ForEachCtx(ctx, s.workers, len(s.shards), func(i int) {
		perShard[i], _ = s.shards[i].searchVectorCtx(ctx, qv, k, keep)
	}); err != nil {
		return nil, err
	}
	merged := newTopK(k)
	for _, hits := range perShard {
		for i := range hits {
			merged.consider(hits[i].Chunk, hits[i].Score)
		}
	}
	return merged.sorted(), nil
}

// searchVectorCtx probes as SearchVector does but stops claiming cells once
// ctx is done; each cell's exact re-rank also checks between candidate rows.
func (a *ANN) searchVectorCtx(ctx context.Context, qv Vector, k int, keep func(string) bool) ([]Hit, error) {
	n := a.Len()
	if k <= 0 || n == 0 {
		return nil, ctx.Err()
	}
	if n < annMinCorpus {
		return a.Index.searchVectorCtx(ctx, qv, k, keep)
	}
	a.ensureBuilt(n)

	probes := a.probe(qv)
	var q8 []int8
	var qscale float32
	if a.quantize {
		q8 = make([]int8, a.dim)
		qscale = quantize8(qv, q8)
	}
	perList := make([][]Hit, len(probes))
	if err := par.ForEachCtx(ctx, a.workers, len(probes), func(i int) {
		perList[i] = a.scanList(probes[i], qv, q8, qscale, k, keep)
	}); err != nil {
		return nil, err
	}
	merged := newTopK(k)
	for _, hits := range perList {
		for i := range hits {
			merged.consider(hits[i].Chunk, hits[i].Score)
		}
	}
	return merged.sorted(), nil
}
