package retrieval

import (
	"fmt"

	"multirag/internal/wal"
)

// Checkpoint serialization of the retrieval store: the embedding width, the
// chunk count, then every chunk with its stored vector in the store's
// deterministic enumeration order. Decoding re-inserts through the normal
// append path of a caller-supplied empty store, so the layered variants
// (sharded routing, postings pre-filter, ANN cells) rebuild their own derived
// structure; only the irreducible chunk+vector data hits the wire. The ANN
// tier's IVF structure is deliberately not persisted — it is a per-snapshot
// lazy build anyway, and recomputing it after recovery costs one ensureBuilt.

// decodeBatch bounds how many chunks DecodeIntoStore buffers per
// AddEmbeddedBatch call, so decoding never holds a second full copy of the
// corpus in flight.
const decodeBatch = 1024

// EncodeStore serializes s into e.
func EncodeStore(e *wal.Encoder, s Store) {
	e.Int(s.Dim())
	e.Int(s.Len())
	s.ForEachEmbedded(func(c Chunk, v Vector) {
		e.String(c.ID)
		e.String(c.DocID)
		e.String(c.Source)
		e.String(c.Text)
		e.F32s(v)
	})
}

// DecodeIntoStore fills the empty store s from d (the inverse of
// EncodeStore). The store's width must match the encoded one; every vector is
// validated against it before insertion, so a corrupt payload errors instead
// of tripping the store's dim panic.
func DecodeIntoStore(d *wal.Decoder, s Store) error {
	dim := d.Int()
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if dim != s.Dim() {
		return fmt.Errorf("retrieval: decode: encoded dim %d does not match store dim %d", dim, s.Dim())
	}
	if s.Len() != 0 {
		return fmt.Errorf("retrieval: decode: target store already holds %d chunks", s.Len())
	}
	cs := make([]Chunk, 0, min(n, decodeBatch))
	vs := make([]Vector, 0, min(n, decodeBatch))
	for i := 0; i < n && d.Err() == nil; i++ {
		c := Chunk{ID: d.String(), DocID: d.String(), Source: d.String(), Text: d.String()}
		v := d.F32s()
		if d.Err() != nil {
			break
		}
		if len(v) != dim {
			return fmt.Errorf("retrieval: decode: chunk %s vector dim %d does not match %d", c.ID, len(v), dim)
		}
		cs = append(cs, c)
		vs = append(vs, v)
		if len(cs) == decodeBatch {
			s.AddEmbeddedBatch(cs, vs)
			cs, vs = cs[:0], vs[:0]
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if len(cs) > 0 {
		s.AddEmbeddedBatch(cs, vs)
	}
	return nil
}
