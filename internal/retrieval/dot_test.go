package retrieval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// cosineSeed is a copy of the exact-path scorer as it stood before the
// unrolled kernels landed: per-element float64 widening, single accumulator,
// ascending order. TestCosineBitIdenticalToSeed pins Cosine against it so
// the ANN coarse-pass kernel can never leak into exact-path scores.
func cosineSeed(a, b Vector) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var dot float64
	for i := 0; i < n; i++ {
		dot += float64(a[i]) * float64(b[i])
	}
	return dot
}

// TestCosineBitIdenticalToSeed is the exact-path property: for arbitrary
// text pairs (and the embedding widths the system uses), Cosine returns the
// bit-identical float64 the seed implementation returned.
func TestCosineBitIdenticalToSeed(t *testing.T) {
	f := func(a, b string) bool {
		for _, dim := range []int{32, 64, DefaultDim} {
			va, vb := Embed(a, dim), Embed(b, dim)
			if Cosine(va, vb) != cosineSeed(va, vb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDot32MatchesReference checks the unrolled float32 kernel against a
// naive float32 loop (identical pairwise products, so the only freedom is
// accumulation order — the 4-lane split must stay within float32 rounding of
// the naive sum) across lengths that exercise every tail case.
func TestDot32MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 255, 256} {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
		}
		var naive float64
		for i := range a {
			naive += float64(a[i]) * float64(b[i])
		}
		got := float64(dot32(a, b))
		if math.Abs(got-naive) > 1e-3*float64(n+1) {
			t.Fatalf("n=%d: dot32 = %v, naive = %v", n, got, naive)
		}
	}
}

// TestDot8Exact: integer accumulation has no rounding, so the int8 kernel
// must match the naive int32 sum exactly for every tail length.
func TestDot8Exact(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{0, 1, 3, 4, 5, 8, 33, 256} {
		a := make([]int8, n)
		b := make([]int8, n)
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
			b[i] = int8(rng.Intn(255) - 127)
		}
		var naive int32
		for i := range a {
			naive += int32(a[i]) * int32(b[i])
		}
		if got := dot8(a, b); got != naive {
			t.Fatalf("n=%d: dot8 = %d, naive = %d", n, got, naive)
		}
	}
}

// TestQuantize8RoundTrip: per-vector scale quantization must reconstruct
// dot products within the |v|·maxerr bound that a 1/254 step size implies,
// and a zero vector must quantize losslessly to zero.
func TestQuantize8RoundTrip(t *testing.T) {
	const dim = 64
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 50; round++ {
		v := Embed(randText(rng), dim)
		q := make([]int8, dim)
		scale := quantize8(v, q)
		for i := range v {
			back := float32(q[i]) * scale
			if diff := math.Abs(float64(back - v[i])); diff > float64(scale)/2+1e-7 {
				t.Fatalf("round %d dim %d: |%v - %v| = %v > scale/2 = %v",
					round, i, back, v[i], diff, scale/2)
			}
		}
	}
	q := make([]int8, dim)
	if scale := quantize8(make(Vector, dim), q); scale != 0 {
		t.Fatalf("zero vector scale = %v, want 0", scale)
	}
	for i := range q {
		if q[i] != 0 {
			t.Fatal("zero vector must quantize to all zeros")
		}
	}
}
