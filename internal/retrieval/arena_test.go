package retrieval

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestArenaRoundTrip pins the stride arithmetic: vectors read back from the
// arena are exactly the vectors appended, in order.
func TestArenaRoundTrip(t *testing.T) {
	const dim = 48
	a := newArena(dim)
	rng := rand.New(rand.NewSource(5))
	var want []Vector
	for i := 0; i < 37; i++ {
		v := Embed(fmt.Sprintf("chunk number %d has %d tokens", i, rng.Intn(9)), dim)
		want = append(want, v)
		a.appendVec(v)
	}
	if a.len() != len(want) {
		t.Fatalf("arena len = %d, want %d", a.len(), len(want))
	}
	for i, w := range want {
		got := a.at(i)
		for d := range w {
			if got[d] != w[d] {
				t.Fatalf("vector %d dim %d: got %v want %v", i, d, got[d], w[d])
			}
		}
	}
}

// TestArenaRejectsDimMismatch: the arena fixes the stride at construction, so
// a mismatched append must fail before mutating anything.
func TestArenaRejectsDimMismatch(t *testing.T) {
	a := newArena(16)
	a.appendVec(make(Vector, 16))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("appendVec with wrong dim must panic")
			}
		}()
		a.appendVec(make(Vector, 8))
	}()
	if a.len() != 1 {
		t.Fatalf("rejected append mutated the arena: len = %d", a.len())
	}
}

// TestArenaCloneForAppendIsolation is the copy-on-write contract at the
// arena level: appends to a clone never change what the parent serves, even
// across the reallocation boundary.
func TestArenaCloneForAppendIsolation(t *testing.T) {
	const dim = 8
	a := newArena(dim)
	for i := 0; i < 5; i++ {
		v := make(Vector, dim)
		v[0] = float32(i + 1)
		a.appendVec(v)
	}
	clone := a.cloneForAppend()
	for i := 0; i < 100; i++ {
		v := make(Vector, dim)
		v[0] = -1
		clone.appendVec(v)
	}
	if a.len() != 5 {
		t.Fatalf("parent len changed: %d", a.len())
	}
	for i := 0; i < 5; i++ {
		if a.at(i)[0] != float32(i+1) {
			t.Fatalf("parent vector %d corrupted by clone append: %v", i, a.at(i)[0])
		}
	}
	if clone.len() != 105 || clone.at(5)[0] != -1 {
		t.Fatalf("clone lost appends: len=%d", clone.len())
	}
}

// TestAddEmbeddedBatchValidation: a malformed batch (length mismatch or a
// dim-mismatched vector) must panic up front with the store untouched, for
// both the flat and the sharded store.
func TestAddEmbeddedBatchValidation(t *testing.T) {
	mustPanic := func(t *testing.T, name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	cs := []Chunk{{ID: "a#c0", Text: "x"}, {ID: "b#c0", Text: "y"}}
	good := []Vector{make(Vector, 32), make(Vector, 32)}
	for _, shards := range []int{1, 4} {
		st := New(Options{Dim: 32, Shards: shards, Postings: true})
		st.AddEmbeddedBatch(cs, good) // well-formed baseline
		if st.Len() != 2 {
			t.Fatalf("shards=%d: baseline batch lost: len=%d", shards, st.Len())
		}
		mustPanic(t, fmt.Sprintf("shards=%d length mismatch", shards), func() {
			st.AddEmbeddedBatch([]Chunk{{ID: "c#c0"}, {ID: "d#c0"}}, good[:1])
		})
		mustPanic(t, fmt.Sprintf("shards=%d dim mismatch", shards), func() {
			st.AddEmbeddedBatch([]Chunk{{ID: "c#c0"}, {ID: "d#c0"}}, []Vector{make(Vector, 32), make(Vector, 16)})
		})
		if st.Len() != 2 {
			t.Fatalf("shards=%d: rejected batch mutated the store: len=%d", shards, st.Len())
		}
	}
	// AddEmbedded single-vector path rejects too.
	ix := NewIndex(32)
	mustPanic(t, "AddEmbedded dim mismatch", func() {
		ix.AddEmbedded(Chunk{ID: "a#c0"}, make(Vector, 31))
	})
	if ix.Len() != 0 {
		t.Fatalf("rejected AddEmbedded mutated the store: len=%d", ix.Len())
	}
}
