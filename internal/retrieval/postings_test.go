package retrieval

import (
	"fmt"
	"testing"
)

// buildPostingsIndex indexes the given texts into a flat index with the
// postings pre-filter enabled, returning the parallel chunk/vector arrays the
// reference scan needs.
func buildPostingsIndex(dim int, texts []string) (*Index, []Chunk, []Vector) {
	ix := New(Options{Dim: dim, Postings: true}).(*Index)
	chunks := make([]Chunk, len(texts))
	vecs := make([]Vector, len(texts))
	for i, text := range texts {
		chunks[i] = Chunk{ID: fmt.Sprintf("p%03d#c0", i), DocID: fmt.Sprintf("p%03d", i),
			Source: "s", Text: text}
		vecs[i] = Embed(text, dim)
		ix.AddEmbedded(chunks[i], vecs[i])
	}
	return ix, chunks, vecs
}

// TestPostingsProvablyExactAccept forces the pruned path's accept decision:
// the corpus shares the query's vocabulary densely, so the candidate set is
// far larger than k and every kept hit scores strictly above zero — the
// selector can prove the pruned result equals the full scan, and searchPruned
// must take it AND return hits identical to the reference scan.
func TestPostingsProvablyExactAccept(t *testing.T) {
	const dim = 64
	texts := make([]string, 40)
	for i := range texts {
		// Every chunk mentions "status delayed", so every chunk is a
		// candidate with a strictly positive score against the query.
		texts[i] = fmt.Sprintf("status delayed flight f%03d", i)
	}
	ix, chunks, vecs := buildPostingsIndex(dim, texts)
	qv := Embed("status delayed", dim)
	const k = 5

	hits, ok := ix.searchPruned(qv, k, nil)
	if !ok {
		t.Fatal("pruned path must accept: candidates >> k and all scores positive")
	}
	if want := refSearch(chunks, vecs, qv, k, nil); !hitsEqual(hits, want) {
		t.Fatalf("accepted pruned result diverges from reference:\n got  %s\n want %s",
			fmtHits(hits), fmtHits(want))
	}
	// The public entry point must serve the same hits.
	if got := ix.SearchVector(qv, k, nil); !hitsEqual(got, refSearch(chunks, vecs, qv, k, nil)) {
		t.Fatal("SearchVector diverges from reference on the accept path")
	}
}

// TestPostingsFlatScanFallback forces the reject decision: the query's
// vocabulary reaches only two chunks while k wants four, so the pruned scan
// cannot prove itself (fewer candidates than k) and must decline — and the
// public search must then fall back to the exact flat scan, returning hits
// identical to the reference including zero-score non-candidates in ID order.
func TestPostingsFlatScanFallback(t *testing.T) {
	const dim = 64
	texts := []string{
		"zebra quilt",
		"velvet prism",
		"status delayed",
		"status boarding",
		"marble lantern",
	}
	ix, chunks, vecs := buildPostingsIndex(dim, texts)
	qv := Embed("status", dim)
	const k = 4

	if _, ok := ix.searchPruned(qv, k, nil); ok {
		t.Fatal("pruned path must decline: fewer candidates than k")
	}
	got := ix.SearchVector(qv, k, nil)
	want := refSearch(chunks, vecs, qv, k, nil)
	if !hitsEqual(got, want) {
		t.Fatalf("fallback diverges from reference:\n got  %s\n want %s",
			fmtHits(got), fmtHits(want))
	}
	if len(got) != k {
		t.Fatalf("fallback must fill k=%d from non-candidates, got %d", k, len(got))
	}
}
