package retrieval

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestChunkTextRespectsBudget(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "Sentence number %d has exactly seven tokens. ", i)
	}
	chunks := ChunkText("doc1", "src", sb.String(), 32)
	if len(chunks) < 5 {
		t.Fatalf("expected several chunks, got %d", len(chunks))
	}
	for _, c := range chunks {
		if n := len(strings.Fields(c.Text)); n > 40 {
			t.Fatalf("chunk exceeds budget badly: %d words", n)
		}
		if c.DocID != "doc1" || c.Source != "src" {
			t.Fatalf("provenance lost: %+v", c)
		}
	}
	// IDs must be unique.
	seen := map[string]bool{}
	for _, c := range chunks {
		if seen[c.ID] {
			t.Fatalf("duplicate chunk id %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestChunkTextSingleSentence(t *testing.T) {
	chunks := ChunkText("d", "s", "One short sentence.", 0)
	if len(chunks) != 1 {
		t.Fatalf("chunks = %d", len(chunks))
	}
}

func TestChunkTextEmpty(t *testing.T) {
	if got := ChunkText("d", "s", "   ", 10); len(got) != 0 {
		t.Fatalf("empty text must produce no chunks, got %v", got)
	}
}

func TestEmbedNormalised(t *testing.T) {
	v := Embed("The director of Heat is Michael Mann", DefaultDim)
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Fatalf("|v| = %v, want 1", math.Sqrt(norm))
	}
}

func TestEmbedDeterministic(t *testing.T) {
	a := Embed("hello world", 64)
	b := Embed("hello world", 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding must be deterministic")
		}
	}
}

func TestEmbedSimilarityOrdering(t *testing.T) {
	q := Embed("director of Heat", DefaultDim)
	rel := Embed("The director of Heat is Michael Mann", DefaultDim)
	irr := Embed("Stock prices rose sharply in early trading", DefaultDim)
	if Cosine(q, rel) <= Cosine(q, irr) {
		t.Fatalf("lexically related text must score higher: %v vs %v",
			Cosine(q, rel), Cosine(q, irr))
	}
}

func TestCosineBoundsProperty(t *testing.T) {
	f := func(a, b string) bool {
		c := Cosine(Embed(a, 64), Embed(b, 64))
		return c >= -1-1e-6 && c <= 1+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func buildIndex(t *testing.T) *Index {
	t.Helper()
	ix := NewIndex(DefaultDim)
	docs := []struct{ id, src, text string }{
		{"d1", "imdb", "The director of Heat is Michael Mann. The year of Heat is 1995."},
		{"d2", "wiki", "The director of Inception is Christopher Nolan."},
		{"d3", "forum", "The stock price of ACME reached a new high."},
		{"d4", "news", "Typhoon Haikui impacts airport departures after 14:00."},
	}
	for _, d := range docs {
		for _, c := range ChunkText(d.id, d.src, d.text, 64) {
			ix.Add(c)
		}
	}
	return ix
}

func TestIndexSearchTopK(t *testing.T) {
	ix := buildIndex(t)
	hits := ix.Search("Who is the director of Heat?", 2)
	if len(hits) != 2 {
		t.Fatalf("hits = %d", len(hits))
	}
	if hits[0].Chunk.DocID != "d1" {
		t.Fatalf("top hit = %s, want d1", hits[0].Chunk.DocID)
	}
	if hits[0].Score < hits[1].Score {
		t.Fatal("hits must be sorted by score")
	}
}

func TestIndexSearchEdgeCases(t *testing.T) {
	ix := NewIndex(0)
	if ix.Search("q", 3) != nil {
		t.Fatal("empty index must return nil")
	}
	ix = buildIndex(t)
	if got := ix.Search("q", 0); got != nil {
		t.Fatal("k=0 must return nil")
	}
	if got := ix.Search("director", 100); len(got) != ix.Len() {
		t.Fatalf("k beyond size must return all %d, got %d", ix.Len(), len(got))
	}
}

func TestSearchFiltered(t *testing.T) {
	ix := buildIndex(t)
	hits := ix.SearchFiltered("director of Heat", 4, func(src string) bool { return src != "imdb" })
	for _, h := range hits {
		if h.Chunk.Source == "imdb" {
			t.Fatal("filtered source leaked")
		}
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	ix := NewIndex(64)
	ix.Add(Chunk{ID: "b", DocID: "b", Text: "identical text"})
	ix.Add(Chunk{ID: "a", DocID: "a", Text: "identical text"})
	hits := ix.Search("identical text", 2)
	if hits[0].Chunk.ID != "a" {
		t.Fatalf("ties must break by ID: got %s first", hits[0].Chunk.ID)
	}
}
