// Package multirag is a from-scratch Go implementation of MultiRAG, the
// knowledge-guided framework for mitigating hallucination in multi-source
// retrieval-augmented generation (Wu et al., ICDE 2025).
//
// MultiRAG ingests heterogeneous data sources — structured CSV tables,
// semi-structured JSON and XML, native knowledge-graph triples and free text
// — normalises them into linked data, extracts a knowledge graph, and builds
// a multi-source line graph that aggregates every claim about one (entity,
// attribute) fact into a homologous subgraph. At query time a multi-level
// confidence computation (graph-level consistency via normalised mutual
// information, node-level consistency + authority + source history) filters
// untrustworthy claims before they reach the language model's context, which
// is what suppresses retrieval-induced hallucination.
//
// # Quick start
//
//	sys := multirag.Open(multirag.Config{})
//	err := sys.IngestFiles(
//		multirag.File{Domain: "flights", Source: "airline", Name: "live",
//			Format: "json", Content: []byte(`[{"flight":"CA981","status":"Delayed"}]`)},
//	)
//	ans := sys.Ask("What is the status of CA981?")
//	fmt.Println(ans.Values) // [Delayed]
//
// A System serves concurrently: queries evaluate against immutable,
// atomically swapped snapshots while ingestion batches commit on a parallel
// write path with incremental line-graph maintenance, so Ask scales across
// goroutines and IngestFiles never blocks readers. See DESIGN.md for the
// snapshot/delta architecture.
//
// Dense chunk retrieval is exact by default. For large corpora, Config.ANN
// (CLI -ann, -nprobe, -ann-int8) switches retrieval to an approximate IVF
// tier: a k-means coarse quantizer over a flat vector arena selects the
// lists to scan and the exact scorer re-ranks the survivors, so per-hit
// scores stay exact while candidate coverage becomes a measured trade-off.
// `make bench-ann` records the recall@10 / score-MAE / speedup grid per
// configuration into BENCH_retrieval.json. See DESIGN.md §3.
//
// For deployment as a service, internal/serve (exposed as the `multirag
// serve` subcommand) wraps a System in an HTTP/JSON front door with
// token-bucket admission control per SLO class, pluggable batch-formation
// policies (fcfs / sjf / priority), bounded request queues whose ingest
// backpressure couples to the group committer via IngestPressure, and a
// metrics endpoint reporting per-class latency percentiles and Jain
// fairness. See DESIGN.md §8.
//
// Systems opened with multirag.Open are in-memory; OpenDurable(dir, cfg)
// adds write-ahead logging and checkpointing under dir (CLI: `multirag serve
// -data-dir`). Every acknowledged ingest is fsync'd into the log before its
// snapshot is published, a background checkpointer folds the log into
// snapshots, and reopening the same directory replays the tail — RecoveryInfo
// reports what was found. Durable systems must be Close'd to take the final
// checkpoint; `multirag recover` inspects and repairs a directory offline.
// See DESIGN.md §9.
//
// Read capacity scales out with NewReplicaSet: the primary ships every
// committed WAL record over a per-replica feed and each replica replays it
// through the same path crash recovery uses, so replica state is
// byte-identical to the primary's at the same position — verified online by
// periodic anti-entropy digest markers. A replica that drops frames, fails a
// replay or diverges fences itself and resyncs from a primary snapshot. The
// serving layer routes reads across the set (CLI: `multirag serve -replicas
// N -route round-robin|least-loaded|primary-only`), bounds staleness
// (-max-lag, laggards fail over to the primary), health-checks replicas
// behind per-replica circuit breakers, and optionally hedges slow reads onto
// a second replica (-hedge-after), returning whichever answer lands first
// and canceling the loser. `multirag recover -verify` prints the replication
// position and snapshot digest for offline cross-node comparison; `make
// bench-cluster` records the replica-count sweep into BENCH_cluster.json.
// See DESIGN.md section 11.
//
// The public API wraps the internal modules: adapters (internal/adapter),
// the DSM columnar store (internal/dsm), JSON-LD normalisation
// (internal/jsonld), knowledge-graph storage (internal/kg), the line-graph
// machinery (internal/linegraph), confidence computing (internal/confidence)
// and the MKLGP pipeline (internal/core). The language model is a
// deterministic simulation (internal/llm); see DESIGN.md for the
// substitution rationale.
package multirag
